#include "obs/telemetry.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bgl::obs {

namespace {

struct TelemetryState {
  std::atomic<bool> enabled{false};
  std::mutex mutex;
  std::string path;
  std::vector<std::string> pending;
  std::map<int, std::int64_t> steps;  // per-rank step index
  int flush_every = 10;
  int since_flush = 0;
  bool truncated = false;  // first open truncates, later opens append
};

void register_exit_flush() {
  static std::atomic<bool> registered{false};
  if (!registered.exchange(true)) std::atexit([] { flush_telemetry(); });
}

/// BGL_TELEMETRY=foo.jsonl under the SPMD launcher becomes
/// foo.rank<R>.jsonl — each process owns its file, no cross-process
/// interleaving. In thread mode the path is used as given.
std::string rank_qualified(std::string path) {
  const char* rank = std::getenv("BGL_RANK");
  if (rank == nullptr || rank[0] == '\0') return path;
  const std::size_t dot = path.rfind('.');
  const std::string suffix = std::string(".rank") + rank;
  if (dot == std::string::npos || dot == 0) return path + suffix;
  return path.substr(0, dot) + suffix + path.substr(dot);
}

TelemetryState& state() {
  static TelemetryState* s = [] {
    auto* st = new TelemetryState();  // leaked: outlives rank threads
    if (const char* every = std::getenv("BGL_TELEMETRY_EVERY")) {
      const int k = std::atoi(every);
      if (k >= 1) st->flush_every = k;
    }
    if (const char* path = std::getenv("BGL_TELEMETRY")) {
      if (path[0] != '\0') {
        st->path = rank_qualified(path);
        st->enabled.store(true, std::memory_order_relaxed);
        register_exit_flush();
      }
    }
    return st;
  }();
  return *s;
}

void flush_locked(TelemetryState& st) {
  if (st.pending.empty() || st.path.empty()) return;
  const auto parent = std::filesystem::path(st.path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream os(st.path,
                   st.truncated ? std::ios::app : std::ios::trunc);
  if (!os.good()) return;  // best-effort: telemetry must never kill a run
  st.truncated = true;
  for (const std::string& line : st.pending) os << line << '\n';
  st.pending.clear();
  st.since_flush = 0;
}

}  // namespace

bool telemetry_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void set_telemetry_path(std::string_view path) {
  TelemetryState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  flush_locked(st);  // drain any lines bound for the previous file
  st.path = path.empty() ? std::string() : rank_qualified(std::string(path));
  st.truncated = false;
  st.steps.clear();
  st.enabled.store(!st.path.empty(), std::memory_order_relaxed);
  if (!st.path.empty()) register_exit_flush();
}

std::string telemetry_path() {
  TelemetryState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.path;
}

void set_telemetry_flush_every(int k) {
  TelemetryState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.flush_every = k < 1 ? 1 : k;
}

void telemetry_step(const TelemetryRecord& r) {
  if (!telemetry_enabled()) return;

  // Registry-sourced context: runtime counters and the running step-time
  // quantiles. Read from the calling thread's registry — the trainer runs
  // on its rank's thread, so these are per-rank numbers.
  std::int64_t retransmits = 0, crc_failures = 0, bytes_saved = 0;
  double p50 = 0.0, p99 = 0.0;
  if (metrics_enabled()) {
    Registry& reg = registry();
    retransmits = reg.counter("comm.retry.retransmits").value();
    crc_failures = reg.counter("comm.crc.failures").value();
    bytes_saved = reg.counter("comm.compressed.bytes_saved").value();
    if (r.step_hist != nullptr) {
      const Histogram& h = reg.histogram(r.step_hist);
      p50 = h.quantile(0.5);
      p99 = h.quantile(0.99);
    }
  }

  TelemetryState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (st.path.empty()) return;
  const std::int64_t step = st.steps[r.rank]++;

  std::string line;
  line.reserve(512);
  const auto num = [&line](const char* key, double v) {
    line += ",\"";
    line += key;
    line += "\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    line += buf;
  };
  const auto integer = [&line](const char* key, std::int64_t v) {
    line += ",\"";
    line += key;
    line += "\":";
    line += std::to_string(v);
  };
  line += "{\"step\":" + std::to_string(step);
  integer("rank", r.rank);
  integer("ts_us", now_us());
  num("loss", r.loss);
  num("aux_loss", r.aux_loss);
  num("grad_norm", r.grad_norm);
  line += ",\"applied\":";
  line += r.applied ? "true" : "false";
  line += ",\"overlapped\":";
  line += r.overlapped ? "true" : "false";
  num("forward_s", r.forward_s);
  num("backward_s", r.backward_s);
  num("allreduce_s", r.allreduce_s);
  num("alltoall_s", r.alltoall_s);
  num("optimizer_s", r.optimizer_s);
  num("total_s", r.total_s);
  integer("demanded", r.demanded);
  integer("routed", r.routed);
  integer("dropped", r.dropped);
  integer("capacity_slots", r.capacity_slots);
  integer("max_expert_load", r.max_expert_load);
  integer("retransmits", retransmits);
  integer("crc_failures", crc_failures);
  integer("compressed_bytes_saved", bytes_saved);
  num("step_p50_s", p50);
  num("step_p99_s", p99);
  line += '}';

  st.pending.push_back(std::move(line));
  if (++st.since_flush >= st.flush_every) flush_locked(st);
}

void flush_telemetry() {
  TelemetryState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  flush_locked(st);
}

}  // namespace bgl::obs
