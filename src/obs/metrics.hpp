// Thread-safe metrics registry: counters, gauges and log-spaced histograms.
//
// This is the measurement layer the ROADMAP's "make a hot path measurably
// faster" loop runs on (see DESIGN.md §8). Contracts:
//
//  * Determinism-neutral: recording a metric never feeds back into any
//    computation — instrumented code produces bitwise-identical numerics
//    whether metrics are on, off, or half-flushed. Tests enforce this.
//  * Near-zero cost when disabled: every recording helper first checks a
//    single relaxed atomic bool (BGL_METRICS=0 disables at startup;
//    set_metrics_enabled() overrides programmatically). bench_obs_overhead
//    measures the disabled path on the threaded MoE step.
//  * Rank-aware: ranks are threads of one process (DESIGN.md §1), so the
//    registry is *thread-bound*: registry() returns the registry installed
//    on the calling thread by ScopedRegistry, falling back to the shared
//    process-global one. A rank that wants its own accounting (e.g. to feed
//    obs::reduce_metrics) binds a private Registry for the duration of its
//    rank function.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace bgl::obs {

/// Global metrics switch. Initialized once from the environment: metrics are
/// ON unless BGL_METRICS=0. The check is a single relaxed atomic load.
[[nodiscard]] bool metrics_enabled();

/// Programmatic override (tests, benches). Returns the previous value.
bool set_metrics_enabled(bool enabled);

/// Monotonic event count. add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-written instantaneous value (e.g. the current capacity limit).
/// Tracks how many times it was set so exporters can tell "never touched"
/// (set_count() == 0, value meaningless) from "set to 0.0" — the distinction
/// reduce_metrics needs to keep absent ranks out of min/mean.
class Gauge {
 public:
  void set(double v) {
    v_.store(v, std::memory_order_relaxed);
    sets_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t set_count() const {
    return sets_.load(std::memory_order_relaxed);
  }
  void reset() {
    v_.store(0.0, std::memory_order_relaxed);
    sets_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
  std::atomic<std::int64_t> sets_{0};
};

/// Histogram over fixed log-spaced buckets (base-2, covering [1e-9, ~1.8e10)
/// — 1 ns to ~580 years when recording seconds, token counts up to 10^10
/// when recording loads). Bucket layout:
///
///   bucket 0           : v < kFirstBound            (underflow; 0 lands here)
///   bucket i (0<i<N-1) : kFirstBound * 2^(i-1) <= v < kFirstBound * 2^i
///   bucket N-1         : overflow (everything above the last bound)
///
/// NaN and negative values are rejected (counted in rejected(), otherwise
/// ignored): a NaN must never silently poison sum/min/max. All updates are
/// lock-free atomics; record() is safe from any thread.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr double kFirstBound = 1e-9;

  void record(double v);

  /// Bucket a value would land in (exposed for tests and exporters).
  [[nodiscard]] static int bucket_index(double v);
  /// Exclusive upper bound of bucket i (+inf for the overflow bucket).
  [[nodiscard]] static double bucket_upper_bound(int i);

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// +inf / -inf when empty.
  [[nodiscard]] double min() const {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::array<std::int64_t, kNumBuckets> buckets() const;
  [[nodiscard]] double mean() const {
    const std::int64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Estimated q-quantile (q in [0, 1]) from the log-spaced buckets, linearly
  /// interpolated inside the bucket the rank falls in and clamped to the
  /// observed [min, max]. 0 on an empty histogram. Accuracy is bounded by the
  /// bucket width (a factor of 2), which is plenty for p50/p99 reporting.
  [[nodiscard]] double quantile(double q) const;

  /// The same estimate over an externally merged bucket array (used by
  /// obs::ReducedMetric, whose buckets are sums over ranks). `lo`/`hi` clamp
  /// the interpolation to the merged min/max.
  [[nodiscard]] static double quantile_from_buckets(
      const std::vector<std::int64_t>& buckets, std::int64_t count, double lo,
      double hi, double q);

  void reset();

 private:
  std::array<std::atomic<std::int64_t>, kNumBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

[[nodiscard]] const char* to_string(MetricKind kind);

/// Point-in-time copy of one metric, used for export and cross-rank
/// reduction (obs/reduce.hpp).
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t count = 0;  // counter value, or histogram sample count
  double sum = 0.0;        // gauge value, or histogram sum
  double min = 0.0;
  double max = 0.0;
  std::vector<std::int64_t> buckets;  // histogram only
};

/// Named metric store. Creation is synchronized; the returned references
/// stay valid for the registry's lifetime, so hot paths may cache them.
/// A name identifies one (kind, metric) pair — reusing a name with a
/// different kind is a contract violation and throws.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Copies every metric, sorted by name.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Zeroes every metric (keeps registrations).
  void reset();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry_of(std::string_view name, MetricKind kind);

  mutable std::shared_mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// The shared process-wide registry.
[[nodiscard]] Registry& global_registry();

/// The registry bound to the calling thread (ScopedRegistry), falling back
/// to global_registry().
[[nodiscard]] Registry& registry();

/// Binds `r` as the calling thread's registry for the scope's lifetime
/// (nestable; restores the previous binding on destruction). The rank
/// functions of a World bind per-rank registries through this so
/// reduce_metrics() can aggregate true per-rank numbers.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& r);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

/// --- recording helpers (the instrumentation API) ---------------------------
/// All of them are no-ops (one relaxed load + branch) when metrics are
/// disabled, and record into the thread-bound registry otherwise.

inline void count(const char* name, std::int64_t delta = 1) {
  if (metrics_enabled()) registry().counter(name).add(delta);
}

inline void observe(const char* name, double value) {
  if (metrics_enabled()) registry().histogram(name).record(value);
}

inline void set_gauge(const char* name, double value) {
  if (metrics_enabled()) registry().gauge(name).set(value);
}

}  // namespace bgl::obs
