#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "obs/blackbox.hpp"

namespace bgl::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct TraceEvent {
  const char* name;
  std::int64_t ts_us;
  std::int64_t dur_us;
  int rank;
  std::uint64_t tid;
  char ph;             // 'X' complete span, 's'/'f' flow endpoints
  std::uint64_t flow;  // flow id ('s'/'f' only)
};

struct TraceState {
  std::mutex mutex;
  std::string dir;                  // guarded by mutex
  std::vector<TraceEvent> drained;  // events of exited/flushed threads
  std::map<int, std::int64_t> clock_offsets_us;  // per rank, guarded by mutex
  std::atomic<bool> enabled{false};
};

/// Registered (once) the first time tracing turns on, so a program that only
/// sets BGL_TRACE still gets its files: main-thread thread_local buffers are
/// destroyed before atexit handlers run, so everything has drained by then.
/// Also chains a std::terminate handler — a rank dying on an uncaught
/// exception (poison-path teardown, SPMD abort) still flushes whatever
/// drained before giving way to the previous handler. Harmless if the dir
/// was cleared again before exit (flush is then a no-op).
void register_exit_flush() {
  static std::atomic<bool> registered{false};
  if (!registered.exchange(true)) {
    std::atexit([] { flush_trace(); });
    static std::terminate_handler prev = std::set_terminate([] {
      flush_trace();
      if (prev != nullptr) prev();
      std::abort();
    });
  }
}

TraceState& state() {
  static TraceState* s = [] {
    auto* st = new TraceState();  // leaked: outlives rank threads
    if (const char* dir = std::getenv("BGL_TRACE")) {
      if (dir[0] != '\0') {
        std::filesystem::create_directories(dir);
        st->dir = dir;
        st->enabled.store(true, std::memory_order_relaxed);
        register_exit_flush();
      }
    }
    return st;
  }();
  return *s;
}

/// Per-thread event buffer; splices itself into the global store when full
/// and on thread exit, so appends are lock-free on the hot path.
struct ThreadBuffer {
  std::vector<TraceEvent> events;

  ~ThreadBuffer() { drain(); }

  void drain() {
    if (events.empty()) return;
    TraceState& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    st.drained.insert(st.drained.end(), events.begin(), events.end());
    events.clear();
  }
};

thread_local ThreadBuffer tls_buffer;
thread_local int tls_rank = 0;

std::uint64_t thread_tid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xFFFFFFu;
}

/// Minimal JSON string escaping for span names.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

/// Microseconds since the first call (process-lifetime anchor, so every
/// thread's timestamps share one axis).
std::int64_t now_us() {
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               t0)
      .count();
}

bool tracing_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void set_trace_dir(std::string_view dir) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.dir.assign(dir);
  if (!st.dir.empty()) std::filesystem::create_directories(st.dir);
  st.enabled.store(!st.dir.empty(), std::memory_order_relaxed);
  if (!st.dir.empty()) register_exit_flush();
}

std::string trace_dir() {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.dir;
}

void set_rank(int rank) { tls_rank = rank; }

int current_rank() { return tls_rank; }

void set_clock_offset_us(int rank, std::int64_t offset_us) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.clock_offsets_us[rank] = offset_us;
}

std::int64_t clock_offset_us(int rank) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  const auto it = st.clock_offsets_us.find(rank);
  return it == st.clock_offsets_us.end() ? 0 : it->second;
}

Span::Span(const char* name) : name_(name), t0_us_(-1) {
  // The flight recorder keeps span markers too, so a blackbox dump shows
  // what phase the rank was in even when full tracing is off.
  if (tracing_enabled() || blackbox_enabled()) t0_us_ = now_us();
}

Span::~Span() {
  if (t0_us_ < 0) return;
  const std::int64_t end = now_us();
  if (blackbox_enabled())
    blackbox_record(tls_rank, BlackboxKind::kSpan, /*peer=*/-1, /*tag=*/0,
                    /*comm=*/0, /*seq=*/0,
                    static_cast<double>(end - t0_us_) * 1e-6, name_);
  if (!tracing_enabled()) return;
  tls_buffer.events.push_back(
      {name_, t0_us_, end - t0_us_, tls_rank, thread_tid(), 'X', 0});
  // Bound per-thread memory; the splice is rare and off the span hot path.
  if (tls_buffer.events.size() >= 4096) tls_buffer.drain();
}

namespace {

void record_flow(const char* name, std::uint64_t flow_id, char ph) {
  if (!tracing_enabled()) return;
  tls_buffer.events.push_back(
      {name, now_us(), 0, tls_rank, thread_tid(), ph, flow_id});
  if (tls_buffer.events.size() >= 4096) tls_buffer.drain();
}

}  // namespace

void flow_send(const char* name, std::uint64_t flow_id) {
  record_flow(name, flow_id, 's');
}

void flow_recv(const char* name, std::uint64_t flow_id) {
  record_flow(name, flow_id, 'f');
}

void flush_trace() {
  TraceState& st = state();
  tls_buffer.drain();
  std::vector<TraceEvent> events;
  std::map<int, std::int64_t> offsets;
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (st.dir.empty()) {
      st.drained.clear();
      return;
    }
    dir = st.dir;
    events.swap(st.drained);
    offsets = st.clock_offsets_us;
  }
  if (events.empty()) return;

  std::map<int, std::vector<const TraceEvent*>> by_rank;
  for (const TraceEvent& e : events) by_rank[e.rank].push_back(&e);

  for (const auto& [rank, list] : by_rank) {
    const std::filesystem::path path =
        std::filesystem::path(dir) /
        ("trace.rank" + std::to_string(rank) + ".json");
    std::ofstream os(path, std::ios::trunc);
    BGL_ENSURE(os.good(), "cannot open trace file " << path.string());
    const auto off = offsets.find(rank);
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"rank\":" << rank
       << ",\"clockOffsetUs\":"
       << (off == offsets.end() ? 0 : off->second)
       << "},\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent* e : list) {
      if (!first) os << ',';
      first = false;
      os << "\n{\"name\":\"";
      write_escaped(os, e->name);
      if (e->ph == 'X') {
        os << "\",\"cat\":\"bgl\",\"ph\":\"X\",\"ts\":" << e->ts_us
           << ",\"dur\":" << e->dur_us << ",\"pid\":" << e->rank
           << ",\"tid\":" << e->tid << '}';
      } else {
        // Flow endpoint: paired by (cat, id) across ranks; the finish side
        // carries bp:"e" so viewers bind it to the enclosing slice.
        os << "\",\"cat\":\"bgl.flow\",\"ph\":\"" << e->ph
           << "\",\"id\":" << e->flow << ",\"ts\":" << e->ts_us
           << ",\"pid\":" << e->rank << ",\"tid\":" << e->tid;
        if (e->ph == 'f') os << ",\"bp\":\"e\"";
        os << '}';
      }
    }
    os << "\n]}\n";
    BGL_ENSURE(os.good(), "failed writing trace file " << path.string());
  }
}

void discard_trace() {
  TraceState& st = state();
  tls_buffer.events.clear();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.drained.clear();
}

std::size_t buffered_trace_events() {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.drained.size() + tls_buffer.events.size();
}

}  // namespace bgl::obs
