#include "obs/trace_merge.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "core/error.hpp"

namespace bgl::obs {

namespace {

/// Minimal recursive-descent JSON parser — just enough for the trace files
/// this module itself writes (objects, arrays, strings, numbers, booleans).
/// Self-contained on purpose: the repo has no JSON dependency and the test
/// suite's parser lives in test code.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    BGL_ENSURE(pos_ == text_.size(), "trailing JSON at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  char peek() {
    BGL_ENSURE(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    BGL_ENSURE(peek() == c, "expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = c == 't';
      pos_ += v.boolean ? 4 : 5;
      BGL_ENSURE(pos_ <= text_.size(), "truncated JSON literal");
      return v;
    }
    if (c == 'n') {
      pos_ += 4;
      BGL_ENSURE(pos_ <= text_.size(), "truncated JSON literal");
      return JsonValue{};
    }
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      BGL_ENSURE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        BGL_ENSURE(pos_ < text_.size(), "unterminated JSON escape");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':
            // The writer never emits \u escapes; accept and skip them.
            BGL_ENSURE(pos_ + 4 <= text_.size(), "truncated \\u escape");
            pos_ += 4;
            out += '?';
            break;
          default: out += e; break;
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    BGL_ENSURE(pos_ > start, "expected JSON number at offset " << start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

struct MergedEvent {
  std::string json;     // re-serialized event body (with aligned ts)
  std::int64_t ts_us;   // aligned timestamp (sort key)
};

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
  os << '"';
}

double num_or(const JsonValue& obj, const std::string& key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number
                                                             : fallback;
}

}  // namespace

MergeSummary merge_traces(const std::string& dir,
                          const std::string& out_path) {
  MergeSummary summary;
  std::vector<std::filesystem::path> files;
  BGL_ENSURE(std::filesystem::is_directory(dir),
             "not a directory: " << dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("trace.rank", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  BGL_ENSURE(!files.empty(), "no trace.rank*.json files in " << dir);

  std::vector<MergedEvent> merged;
  // Flow endpoints by id: first element holds send ('s') aligned ts list,
  // second recv ('f') — messages can share an id only if the channel
  // ordinal wrapped, which it cannot, so one of each is the common case.
  std::map<std::uint64_t, std::pair<std::vector<std::int64_t>,
                                    std::vector<std::int64_t>>>
      flows;

  for (const auto& path : files) {
    std::ifstream is(path);
    BGL_ENSURE(is.good(), "cannot open " << path.string());
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    const JsonValue root = JsonParser(text).parse();
    BGL_ENSURE(root.type == JsonValue::Type::kObject,
               path.string() << ": not a JSON object");

    std::int64_t offset_us = 0;
    if (const JsonValue* other = root.find("otherData"); other != nullptr)
      offset_us = static_cast<std::int64_t>(
          num_or(*other, "clockOffsetUs", 0.0));

    const JsonValue* events = root.find("traceEvents");
    BGL_ENSURE(events != nullptr &&
                   events->type == JsonValue::Type::kArray,
               path.string() << ": missing traceEvents");
    ++summary.files;

    for (const JsonValue& e : events->array) {
      BGL_ENSURE(e.type == JsonValue::Type::kObject,
                 path.string() << ": malformed trace event");
      const std::int64_t ts =
          static_cast<std::int64_t>(num_or(e, "ts", 0.0)) + offset_us;
      const JsonValue* ph = e.find("ph");
      const std::string phase =
          ph != nullptr ? ph->string : std::string("X");

      std::ostringstream body;
      body << '{';
      bool first = true;
      for (const auto& [key, value] : e.object) {
        if (!first) body << ',';
        first = false;
        write_json_string(body, key);
        body << ':';
        if (key == "ts") {
          body << ts;
        } else {
          switch (value.type) {
            case JsonValue::Type::kString:
              write_json_string(body, value.string);
              break;
            case JsonValue::Type::kNumber: {
              // Every numeric field the writer emits is integral.
              body << static_cast<std::int64_t>(value.number);
              break;
            }
            case JsonValue::Type::kBool:
              body << (value.boolean ? "true" : "false");
              break;
            default:
              body << "null";
              break;
          }
        }
      }
      body << '}';
      merged.push_back({body.str(), ts});

      if (phase == "s" || phase == "f") {
        const auto id = static_cast<std::uint64_t>(num_or(e, "id", 0.0));
        auto& entry = flows[id];
        (phase == "s" ? entry.first : entry.second).push_back(ts);
      }
    }
  }

  for (auto& [id, endpoints] : flows) {
    auto& [sends, recvs] = endpoints;
    std::sort(sends.begin(), sends.end());
    std::sort(recvs.begin(), recvs.end());
    const std::size_t pairs = std::min(sends.size(), recvs.size());
    summary.unmatched_flows +=
        sends.size() + recvs.size() - 2 * pairs;
    for (std::size_t i = 0; i < pairs; ++i) {
      const std::int64_t delta = recvs[i] - sends[i];
      if (summary.flow_pairs == 0 || delta < summary.min_flow_delta_us)
        summary.min_flow_delta_us = delta;
      if (summary.flow_pairs == 0 || delta > summary.max_flow_delta_us)
        summary.max_flow_delta_us = delta;
      ++summary.flow_pairs;
    }
  }

  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  summary.events = merged.size();

  std::ofstream os(out_path, std::ios::trunc);
  BGL_ENSURE(os.good(), "cannot open output file " << out_path);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const MergedEvent& e : merged) {
    if (!first) os << ',';
    first = false;
    os << '\n' << e.json;
  }
  os << "\n]}\n";
  BGL_ENSURE(os.good(), "failed writing merged trace " << out_path);
  return summary;
}

}  // namespace bgl::obs
