// Cluster-wide metrics reduction over the message-passing runtime.
//
// Every rank snapshots its thread-bound registry, the snapshots gather to
// rank 0 over the existing Communicator, and rank 0 merges them into one
// ClusterMetrics so a run can print a single machine-wide report:
// counters and histogram buckets sum across ranks, gauges keep min/mean/max,
// and per-rank counter skew (min/max) is preserved — that skew is exactly
// the load-imbalance signal BaGuaLu-style MoE tuning needs.
//
// Header-only on purpose: obs/metrics must not link against the runtime
// (the runtime itself is instrumented with it), so the one obs function
// that needs a Communicator lives here, compiled into its callers.
#pragma once

#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "collectives/coll.hpp"
#include "obs/metrics.hpp"
#include "runtime/comm.hpp"

namespace bgl::obs {

/// One metric aggregated over all ranks.
struct ReducedMetric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t ranks = 0;   // ranks that reported this metric
  std::int64_t count = 0;   // counters: world total; histograms: sample total
  double sum = 0.0;         // histograms: world sum; gauges: sum of values
  double min = 0.0;         // per-rank min (counters: smallest rank value)
  double max = 0.0;         // per-rank max (counters: largest rank value)
  std::vector<std::int64_t> buckets;  // histograms: bucket-wise world sums

  [[nodiscard]] double mean_per_rank() const {
    if (ranks == 0) return 0.0;
    return (kind == MetricKind::kCounter ? static_cast<double>(count) : sum) /
           static_cast<double>(ranks);
  }

  /// Histograms only: q-quantile estimated from the bucket-wise world sums
  /// (see Histogram::quantile). 0 for other kinds or empty histograms.
  [[nodiscard]] double quantile(double q) const {
    if (kind != MetricKind::kHistogram) return 0.0;
    return Histogram::quantile_from_buckets(buckets, count, min, max, q);
  }
};

/// The merged registry of a whole world, valid on rank 0.
struct ClusterMetrics {
  int world_size = 0;
  std::vector<ReducedMetric> metrics;  // sorted by name

  [[nodiscard]] const ReducedMetric* find(std::string_view name) const {
    for (const ReducedMetric& m : metrics)
      if (m.name == name) return &m;
    return nullptr;
  }

  /// Human-readable report: one line per metric.
  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << "cluster metrics (" << world_size << " ranks)\n";
    for (const ReducedMetric& m : metrics) {
      os << "  " << m.name << " [" << obs::to_string(m.kind) << "] ";
      switch (m.kind) {
        case MetricKind::kCounter:
          os << "total=" << m.count << " min/rank=" << m.min
             << " max/rank=" << m.max;
          break;
        case MetricKind::kGauge:
          os << "mean=" << m.mean_per_rank() << " min=" << m.min
             << " max=" << m.max;
          break;
        case MetricKind::kHistogram:
          os << "n=" << m.count << " sum=" << m.sum;
          if (m.count > 0)
            os << " mean=" << m.sum / static_cast<double>(m.count)
               << " min=" << m.min << " max=" << m.max
               << " p50=" << m.quantile(0.5) << " p99=" << m.quantile(0.99);
          break;
      }
      os << '\n';
    }
    return os.str();
  }
};

namespace detail {

inline void put_bytes(std::vector<std::byte>& out, const void* p,
                      std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void put_pod(std::vector<std::byte>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(out, &v, sizeof(T));
}

template <typename T>
T get_pod(const std::vector<std::byte>& in, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  BGL_CHECK(off + sizeof(T) <= in.size());
  T v;
  std::memcpy(&v, in.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

inline std::vector<std::byte> encode_snapshot(
    const std::vector<MetricSnapshot>& snapshot) {
  std::vector<std::byte> out;
  put_pod<std::uint32_t>(out, static_cast<std::uint32_t>(snapshot.size()));
  for (const MetricSnapshot& s : snapshot) {
    put_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.name.size()));
    put_bytes(out, s.name.data(), s.name.size());
    put_pod<std::uint8_t>(out, static_cast<std::uint8_t>(s.kind));
    put_pod<std::int64_t>(out, s.count);
    put_pod<double>(out, s.sum);
    put_pod<double>(out, s.min);
    put_pod<double>(out, s.max);
    put_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.buckets.size()));
    for (const std::int64_t b : s.buckets) put_pod<std::int64_t>(out, b);
  }
  return out;
}

inline std::vector<MetricSnapshot> decode_snapshot(
    const std::vector<std::byte>& in, std::size_t& off) {
  const auto n = get_pod<std::uint32_t>(in, off);
  std::vector<MetricSnapshot> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    MetricSnapshot s;
    const auto len = get_pod<std::uint32_t>(in, off);
    BGL_CHECK(off + len <= in.size());
    s.name.assign(reinterpret_cast<const char*>(in.data() + off), len);
    off += len;
    s.kind = static_cast<MetricKind>(get_pod<std::uint8_t>(in, off));
    s.count = get_pod<std::int64_t>(in, off);
    s.sum = get_pod<double>(in, off);
    s.min = get_pod<double>(in, off);
    s.max = get_pod<double>(in, off);
    const auto nb = get_pod<std::uint32_t>(in, off);
    s.buckets.resize(nb);
    for (std::uint32_t b = 0; b < nb; ++b)
      s.buckets[b] = get_pod<std::int64_t>(in, off);
    out.push_back(std::move(s));
  }
  return out;
}

inline void merge_into(std::map<std::string, ReducedMetric>& acc,
                       const std::vector<MetricSnapshot>& snapshot) {
  for (const MetricSnapshot& s : snapshot) {
    // A gauge the rank registered but never set carries count == 0 (see
    // Registry::snapshot): its 0.0 placeholder value would skew min/mean, so
    // absent ranks simply don't count toward the gauge's `ranks`.
    if (s.kind == MetricKind::kGauge && s.count == 0) continue;
    ReducedMetric& m = acc[s.name];
    if (m.ranks == 0) {
      m.name = s.name;
      m.kind = s.kind;
      if (s.kind == MetricKind::kHistogram)
        m.buckets.assign(s.buckets.size(), 0);
    }
    BGL_ENSURE(m.kind == s.kind, "metric '" << s.name
                                            << "' has mismatched kinds "
                                               "across ranks");
    ++m.ranks;
    switch (s.kind) {
      case MetricKind::kCounter: {
        m.count += s.count;
        const double v = static_cast<double>(s.count);
        if (m.ranks == 1 || v < m.min) m.min = v;
        if (m.ranks == 1 || v > m.max) m.max = v;
        break;
      }
      case MetricKind::kGauge:
        m.sum += s.sum;
        if (m.ranks == 1 || s.sum < m.min) m.min = s.sum;
        if (m.ranks == 1 || s.sum > m.max) m.max = s.sum;
        break;
      case MetricKind::kHistogram:
        m.count += s.count;
        m.sum += s.sum;
        if (s.count > 0) {
          // Empty per-rank histograms carry ±inf sentinels; skip them.
          if (m.count == s.count || s.min < m.min) m.min = s.min;
          if (m.count == s.count || s.max > m.max) m.max = s.max;
        }
        BGL_CHECK(m.buckets.size() == s.buckets.size());
        for (std::size_t b = 0; b < s.buckets.size(); ++b)
          m.buckets[b] += s.buckets[b];
        break;
    }
  }
}

}  // namespace detail

/// Collective: every rank of `world` must call. Each rank contributes its
/// thread-bound registry() snapshot; the merged result returns on rank 0
/// (other ranks get an empty metrics list with world_size filled in).
/// Ranks sharing the global registry will each re-contribute it — bind
/// per-rank registries (ScopedRegistry) for true per-rank accounting.
inline ClusterMetrics reduce_metrics(const rt::Communicator& world) {
  const std::vector<std::byte> mine =
      detail::encode_snapshot(registry().snapshot());
  // Length-prefixed gather: contributions differ in size, and gather
  // concatenates, so each rank frames its blob.
  std::vector<std::byte> framed;
  detail::put_pod<std::uint64_t>(framed, mine.size());
  framed.insert(framed.end(), mine.begin(), mine.end());
  const std::vector<std::byte> all =
      coll::gather<std::byte>(world, framed, /*root=*/0);

  ClusterMetrics out;
  out.world_size = world.size();
  if (world.rank() != 0) return out;

  std::map<std::string, ReducedMetric> acc;
  std::size_t off = 0;
  for (int r = 0; r < world.size(); ++r) {
    const auto len = detail::get_pod<std::uint64_t>(all, off);
    const std::size_t end = off + static_cast<std::size_t>(len);
    BGL_CHECK(end <= all.size());
    const auto snap = detail::decode_snapshot(all, off);
    BGL_CHECK(off == end);
    detail::merge_into(acc, snap);
  }
  out.metrics.reserve(acc.size());
  for (auto& [name, m] : acc) out.metrics.push_back(std::move(m));
  return out;
}

}  // namespace bgl::obs
