// Flight recorder: always-on, fixed-cost per-rank ring buffers of runtime
// events (DESIGN.md §13).
//
// At BaGuaLu scale a failure that takes down a 37M-core job must ship its
// own postmortem: you cannot rerun the job with extra logging. The blackbox
// records the last kCapacity structured runtime events per rank —
// send/recv, acks, retransmits, tombstones, CRC failures, heartbeat
// suspicion transitions, epoch bumps, span markers — into a bounded ring,
// and on failure (typed comm errors, poison, or a best-effort
// terminate/fatal-signal hook) dumps the ring plus a metrics snapshot to
// <dir>/blackbox.rank<R>.json.
//
// Contracts:
//  * Disabled by default; enabled by BGL_BLACKBOX=<dir> at startup or
//    set_blackbox_dir() programmatically. When disabled a record is one
//    relaxed atomic load and a branch.
//  * Fixed cost when enabled: a ring slot write under a per-rank mutex;
//    memory is bounded at kCapacity events per rank regardless of run
//    length.
//  * Determinism-neutral: recording never feeds back into any computation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bgl::obs {

/// What happened. Names are stable: they appear verbatim in the dump JSON
/// (and tests assert on them).
enum class BlackboxKind : std::uint8_t {
  kSend = 0,        // message handed to the transport (peer = dst)
  kRecv,            // message delivered to the application (peer = src)
  kAck,             // cumulative ack sent/processed (peer = other side)
  kRetransmit,      // tier-1 retransmit requested or served
  kTombstone,       // injector drop turned into a tombstone frame (tcp)
  kDrop,            // injector dropped a message in flight
  kDuplicate,       // receiver discarded an already-seen sequence number
  kCrcFail,         // payload failed its CRC check
  kSuspicion,       // heartbeat suspicion crossed the phi threshold
  kRankDead,        // a rank was marked failed/dead
  kEpochBump,       // tier-3 world rebuild completed (aux = new epoch)
  kSpan,            // a trace span closed (label = span name, aux = seconds)
  kPoison,          // the world was poisoned (label = reason, truncated)
  kClockSync,       // clock-offset exchange completed (aux = offset_us)
};

[[nodiscard]] const char* to_string(BlackboxKind kind);

/// One ring slot. `label` must be a string literal or otherwise outlive the
/// program (the ring stores the pointer); nullptr means no label.
struct BlackboxEvent {
  std::int64_t ts_us = 0;  // obs::now_us() timestamp (trace clock)
  BlackboxKind kind = BlackboxKind::kSend;
  std::int32_t peer = -1;  // other rank, -1 when not applicable
  std::int32_t tag = 0;
  std::uint64_t comm = 0;  // communicator id
  std::uint64_t seq = 0;   // tier-1 sequence number (0 on the legacy path)
  double aux = 0.0;        // kind-specific scalar (phi, epoch, seconds, ...)
  const char* label = nullptr;
};

/// Ring capacity per rank: the "last N events" a dump ships.
inline constexpr std::size_t kBlackboxCapacity = 512;

/// True when a dump directory is configured (single relaxed load).
[[nodiscard]] bool blackbox_enabled();

/// Sets the dump directory (created if missing) and enables recording; an
/// empty dir disables it. Installs the best-effort terminate/fatal-signal
/// dump hook on first enable.
void set_blackbox_dir(std::string_view dir);

/// The configured dump directory ("" when disabled).
[[nodiscard]] std::string blackbox_dir();

/// Appends one event to `rank`'s ring (oldest event overwritten when full).
/// Safe from any thread — the socket pump records on behalf of the ranks it
/// hosts. No-op when disabled.
void blackbox_record(int rank, BlackboxKind kind, int peer = -1, int tag = 0,
                     std::uint64_t comm = 0, std::uint64_t seq = 0,
                     double aux = 0.0, const char* label = nullptr);

/// Dumps `rank`'s ring (oldest → newest) plus a snapshot of the calling
/// thread's metrics registry to <dir>/blackbox.rank<R>.json. Best-effort:
/// IO errors are swallowed — this runs on failure paths. No-op when
/// disabled or the ring is empty.
void blackbox_dump(int rank, std::string_view reason);

/// Dumps every rank that recorded events (terminate/signal hook, SPMD
/// poison teardown).
void blackbox_dump_all(std::string_view reason);

/// Current ring contents of `rank`, oldest first (tests).
[[nodiscard]] std::vector<BlackboxEvent> blackbox_events(int rank);

/// Clears every ring (tests).
void blackbox_reset();

}  // namespace bgl::obs
