// Scoped trace spans with per-rank Chrome trace-event export.
//
// Span is an RAII timer: construction stamps a begin time, destruction
// records one complete ("ph":"X") event onto the calling thread's buffer.
// Buffers drain into a process-global store when they grow large, when
// their thread exits, or at flush_trace(), which writes one JSON file per
// observed rank (<dir>/trace.rank<N>.json) loadable by chrome://tracing,
// Perfetto, or speedscope.
//
// Contracts (DESIGN.md §8):
//  * Determinism-neutral: spans only read the clock; they never feed back
//    into any computation.
//  * Disabled by default; enabled by BGL_TRACE=<dir> at startup or
//    set_trace_dir() programmatically. When disabled a Span is two relaxed
//    atomic loads and no clock read.
//  * Rank attribution: World::run tags each rank thread via set_rank(), so
//    spans land in that rank's file (the Chrome "pid" field is the rank).
//    Pool worker threads inherit rank 0 unless tagged.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bgl::obs {

/// True when a trace directory is configured.
[[nodiscard]] bool tracing_enabled();

/// Sets the export directory (created if missing) and enables tracing;
/// an empty dir disables tracing. Not thread-safe against in-flight spans —
/// call from a quiescent point.
void set_trace_dir(std::string_view dir);

/// The configured export directory ("" when disabled).
[[nodiscard]] std::string trace_dir();

/// Tags the calling thread with a rank for span attribution. World::run
/// calls this on every rank thread; tests and tools may call it directly.
void set_rank(int rank);

/// The calling thread's rank tag (0 if never set).
[[nodiscard]] int current_rank();

/// Microseconds on the trace clock (monotonic, anchored at the first obs
/// call in this process). This is the timestamp axis of every exported
/// event; the clock-offset exchange (runtime world setup) reads it so
/// offsets live on the same axis they correct.
[[nodiscard]] std::int64_t now_us();

/// Records rank `rank`'s estimated clock offset: add `offset_us` to that
/// rank's local timestamps to land on rank 0's axis. Stamped into the
/// rank's trace file metadata (clockOffsetUs) for tools/bgl_trace_merge.
/// Offsets are per-process state: the SPMD launcher gives each rank its own
/// process (and so its own clock anchor); in thread mode all ranks share
/// one anchor and the estimates come out ~0.
void set_clock_offset_us(int rank, std::int64_t offset_us);

/// The recorded offset for `rank` (0 if never estimated).
[[nodiscard]] std::int64_t clock_offset_us(int rank);

/// Records a Chrome flow-event endpoint ("s" = send side, "f" = receive
/// side) on the calling thread, attributed to its rank. Both endpoints of a
/// message must use the same `flow_id` (derived from the FIFO channel
/// coordinates — see rt::Communicator); the merge tool then draws the
/// send→recv arrow. No-ops when tracing is disabled.
void flow_send(const char* name, std::uint64_t flow_id);
void flow_recv(const char* name, std::uint64_t flow_id);

/// RAII span: records one complete trace event [construction, destruction)
/// named `name`. `name` must outlive the program's tracing (string
/// literals; the buffer stores the pointer).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::int64_t t0_us_;  // < 0 means tracing was off at construction
};

/// Writes buffered events of the calling thread and every exited thread to
/// <dir>/trace.rank<N>.json (one file per rank seen) and clears them.
/// Call after parallel regions have joined (e.g. after World::run returns)
/// so rank-thread buffers have drained. No-op when tracing is disabled.
void flush_trace();

/// Drops all buffered events without writing (tests).
void discard_trace();

/// Number of events currently buffered (calling thread + drained store).
[[nodiscard]] std::size_t buffered_trace_events();

}  // namespace bgl::obs
