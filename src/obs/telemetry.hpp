// Live step telemetry: a periodic JSONL exporter for training runs
// (DESIGN.md §13).
//
// One line per training step per rank — step-phase wall times, losses, grad
// norm, MoE routing load/drops, and runtime counters (retransmits, CRC
// failures, compression savings) plus step-time p50/p99 read from the
// rank's metrics registry. This is the time series the simnet autotuner and
// an SLO dashboard consume while the job runs, not after it.
//
// Enabled by BGL_TELEMETRY=<file> (or set_telemetry_path()); lines buffer
// in memory and flush every k steps (BGL_TELEMETRY_EVERY, default 10) and
// at exit. Under the SPMD launcher each process writes its own file
// (".rank<R>" inserted before the extension); in thread mode all ranks
// share one file and every record carries its rank.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bgl::obs {

/// One training step's worth of telemetry, filled by the trainers. The
/// exporter adds the per-rank step index, a timestamp, and registry-sourced
/// counters on top.
struct TelemetryRecord {
  int rank = 0;
  double loss = 0.0;
  double aux_loss = 0.0;
  double grad_norm = 0.0;
  bool applied = true;     // false when the loss scaler skipped the step
  bool overlapped = false; // distributed: overlapped allreduce ran
  // Step-phase wall times (seconds).
  double forward_s = 0.0;
  double backward_s = 0.0;
  double allreduce_s = 0.0;
  double alltoall_s = 0.0;
  double optimizer_s = 0.0;
  double total_s = 0.0;
  // MoE routing over this step (local shard).
  std::int64_t demanded = 0;  // pre-capacity (token, expert) demands
  std::int64_t routed = 0;    // assignments that survived capacity
  std::int64_t dropped = 0;   // assignments lost to capacity
  std::int64_t capacity_slots = 0;
  std::int64_t max_expert_load = 0;
  /// Name of this trainer's step-total histogram in the metrics registry
  /// ("trainer.step.total_s" / "dist_trainer.step.total_s"); when metrics
  /// are on, its running p50/p99 are stamped into the line. nullptr skips.
  const char* step_hist = nullptr;
};

/// True when a telemetry file is configured (single relaxed load).
[[nodiscard]] bool telemetry_enabled();

/// Sets the output file and enables the exporter; "" disables. The rank
/// suffix is applied here when the SPMD environment is present.
void set_telemetry_path(std::string_view path);

/// The resolved output path ("" when disabled).
[[nodiscard]] std::string telemetry_path();

/// Flush cadence in steps (clamped to >= 1). Default 10, overridable by
/// BGL_TELEMETRY_EVERY.
void set_telemetry_flush_every(int k);

/// Appends one JSONL line for `r` (buffered; see flush cadence). No-op when
/// disabled.
void telemetry_step(const TelemetryRecord& r);

/// Writes all buffered lines to the file now. Safe to call anytime; also
/// runs at process exit and on the runtime's error paths.
void flush_telemetry();

}  // namespace bgl::obs
