#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>

namespace bgl::obs {

namespace {

bool env_metrics_enabled() {
  const char* s = std::getenv("BGL_METRICS");
  // Metrics default on; BGL_METRICS=0 (or empty) turns them off.
  return s == nullptr || (s[0] != '\0' && !(s[0] == '0' && s[1] == '\0'));
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{env_metrics_enabled()};
  return enabled;
}

/// CAS loops for the atomic-double aggregates. Relaxed ordering is enough:
/// these are statistics, read at quiescent points (snapshot / report).
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool metrics_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

bool set_metrics_enabled(bool enabled) {
  return enabled_flag().exchange(enabled, std::memory_order_relaxed);
}

/// --- Histogram -------------------------------------------------------------

int Histogram::bucket_index(double v) {
  if (v < kFirstBound) return 0;  // includes 0 and subnormal waits
  // The quotient overflows to +inf for huge-but-finite v (v > ~1e299), not
  // just for infinite v, and ilogb(+inf) is INT_MAX — so saturate on the
  // scaled value before adding 1, never after.
  const double scaled = v / kFirstBound;
  if (std::isinf(scaled)) return kNumBuckets - 1;
  const int log2 = std::ilogb(scaled);  // floor(log2) for finite positives
  return (log2 >= kNumBuckets - 2) ? kNumBuckets - 1 : 1 + log2;
}

double Histogram::bucket_upper_bound(int i) {
  BGL_CHECK(i >= 0 && i < kNumBuckets);
  if (i == kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kFirstBound * std::ldexp(1.0, i);
}

void Histogram::record(double v) {
  if (std::isnan(v) || v < 0.0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::quantile_from_buckets(
    const std::vector<std::int64_t>& buckets, std::int64_t count, double lo,
    double hi, double q) {
  if (count <= 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The sample with (0-based) rank ceil(q * (count-1)) — the nearest-rank
  // estimate — found by walking the cumulative bucket counts.
  const double target = q * static_cast<double>(count - 1);
  std::int64_t seen = 0;
  const int n = static_cast<int>(buckets.size());
  for (int i = 0; i < n; ++i) {
    const std::int64_t in_bucket = buckets[static_cast<std::size_t>(i)];
    if (in_bucket <= 0) continue;
    if (target < static_cast<double>(seen + in_bucket)) {
      // Interpolate the target rank's position inside this bucket, assuming
      // samples spread uniformly across [bucket_lo, bucket_hi).
      double b_lo = i == 0 ? 0.0 : bucket_upper_bound(i - 1);
      double b_hi = bucket_upper_bound(i);
      if (std::isinf(b_hi)) b_hi = std::max(hi, b_lo);  // overflow bucket
      const double frac =
          (target - static_cast<double>(seen) + 0.5) /
          static_cast<double>(in_bucket);
      double v = b_lo + (b_hi - b_lo) * std::clamp(frac, 0.0, 1.0);
      if (std::isfinite(lo)) v = std::max(v, lo);
      if (std::isfinite(hi)) v = std::min(v, hi);
      return v;
    }
    seen += in_bucket;
  }
  return std::isfinite(hi) ? hi : 0.0;
}

double Histogram::quantile(double q) const {
  const auto b = buckets();
  return quantile_from_buckets(std::vector<std::int64_t>(b.begin(), b.end()),
                               count(), min(), max(), q);
}

std::array<std::int64_t, Histogram::kNumBuckets> Histogram::buckets() const {
  std::array<std::int64_t, kNumBuckets> out;
  for (int i = 0; i < kNumBuckets; ++i)
    out[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

/// --- Registry --------------------------------------------------------------

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

Registry::Entry& Registry::entry_of(std::string_view name, MetricKind kind) {
  {
    std::shared_lock lock(mutex_);
    const auto it = metrics_.find(name);
    if (it != metrics_.end()) {
      BGL_ENSURE(it->second.kind == kind,
                 "metric '" << name << "' registered as "
                            << to_string(it->second.kind) << ", requested as "
                            << to_string(kind));
      return it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = metrics_.try_emplace(std::string(name));
  if (inserted) {
    it->second.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        it->second.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        it->second.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        it->second.histogram = std::make_unique<Histogram>();
        break;
    }
  } else {
    BGL_ENSURE(it->second.kind == kind,
               "metric '" << name << "' registered as "
                          << to_string(it->second.kind) << ", requested as "
                          << to_string(kind));
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name) {
  return *entry_of(name, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *entry_of(name, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  return *entry_of(name, MetricKind::kHistogram).histogram;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::shared_lock lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        s.count = entry.counter->value();
        break;
      case MetricKind::kGauge:
        // count carries the number of set() calls: 0 marks a registered but
        // never-written gauge, which cross-rank reduction must ignore
        // (otherwise an untouched rank drags min/mean toward 0).
        s.sum = entry.gauge->value();
        s.min = s.sum;
        s.max = s.sum;
        s.count = entry.gauge->set_count();
        break;
      case MetricKind::kHistogram: {
        s.count = entry.histogram->count();
        s.sum = entry.histogram->sum();
        s.min = entry.histogram->min();
        s.max = entry.histogram->max();
        const auto b = entry.histogram->buckets();
        s.buckets.assign(b.begin(), b.end());
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

void Registry::reset() {
  std::unique_lock lock(mutex_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

/// --- thread binding --------------------------------------------------------

namespace {
thread_local Registry* tls_registry = nullptr;
}  // namespace

Registry& global_registry() {
  static Registry* r = new Registry();  // leaked: outlives rank threads
  return *r;
}

Registry& registry() {
  return tls_registry != nullptr ? *tls_registry : global_registry();
}

ScopedRegistry::ScopedRegistry(Registry& r) : prev_(tls_registry) {
  tls_registry = &r;
}

ScopedRegistry::~ScopedRegistry() { tls_registry = prev_; }

}  // namespace bgl::obs
