#include "moe/moe_layer.hpp"

#include <algorithm>

namespace bgl::moe {

MoELayer::MoELayer(std::int64_t d_model, std::int64_t d_hidden,
                   GateConfig config, Rng& rng, const std::string& name)
    : config_(config),
      gate_(d_model, config.num_experts, rng, /*bias=*/false, name + ".gate"),
      noise_rng_(rng.fork(0x6F15E)) {
  config_.validate();
  if (config_.two_level_groups > 0) {
    two_gate_ = std::make_unique<TwoLevelGate>(
        d_model, config_.num_experts, config_.two_level_groups, rng,
        name + ".gate2");
  }
  experts_.reserve(static_cast<std::size_t>(config_.num_experts));
  for (int e = 0; e < config_.num_experts; ++e) {
    experts_.push_back(std::make_unique<nn::FeedForward>(
        d_model, d_hidden, rng, name + ".expert" + std::to_string(e)));
  }
}

Tensor MoELayer::forward(const Tensor& x) {
  BGL_CHECK(x.ndim() == 2);
  cached_x_ = x;
  if (two_gate_) {
    cached_probs_ = two_gate_->forward(x);
  } else {
    Tensor logits = gate_.forward(x);
    if (config_.noisy_gating && training()) {
      for (float& v : logits.f32())
        v += static_cast<float>(noise_rng_.normal(0.0, config_.noise_std));
    }
    cached_probs_ = ops::row_softmax(logits);
  }
  plan_ = build_dispatch_plan(cached_probs_, config_);

  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  Tensor y = Tensor::zeros({n, d});
  expert_inputs_.assign(static_cast<std::size_t>(config_.num_experts), {});
  expert_outputs_.assign(static_cast<std::size_t>(config_.num_experts), {});

  for (int e = 0; e < config_.num_experts; ++e) {
    const auto routed = plan_.for_expert(e);
    std::vector<std::int32_t> rows;
    std::vector<float> weights;
    rows.reserve(routed.size());
    weights.reserve(routed.size());
    for (const Assignment& a : routed) {
      rows.push_back(a.token);
      weights.push_back(a.gate_weight);
    }
    Tensor in = ops::gather_rows(x, rows);
    expert_inputs_[static_cast<std::size_t>(e)] = in;
    if (in.dim(0) == 0) continue;
    Tensor out = experts_[static_cast<std::size_t>(e)]->forward(in);
    ops::scatter_add_rows(y, rows, out, weights);
    expert_outputs_[static_cast<std::size_t>(e)] = std::move(out);
  }
  return y;
}

Tensor MoELayer::backward(const Tensor& dy) {
  BGL_CHECK(cached_x_.defined());
  const std::int64_t n = cached_x_.dim(0);
  const std::int64_t d = cached_x_.dim(1);
  BGL_CHECK(dy.dim(0) == n && dy.dim(1) == d);

  Tensor dx = Tensor::zeros({n, d});
  Tensor dprobs = Tensor::zeros(cached_probs_.shape());
  const std::int64_t e_count = config_.num_experts;
  auto pdy = dy.f32();

  // dL/d(gate_weight) per assignment, in plan order.
  std::vector<float> dws(plan_.assignments.size(), 0.0f);

  for (int e = 0; e < e_count; ++e) {
    const auto routed = plan_.for_expert(e);
    if (routed.empty()) continue;
    const std::size_t base =
        static_cast<std::size_t>(plan_.expert_offsets[e]);
    const Tensor& out = expert_outputs_[static_cast<std::size_t>(e)];
    // dL/d(expert output row i) = w_i * dy[token_i]; also accumulate
    // dL/dw_i = dy[token_i] · out_i.
    Tensor dout = Tensor::empty(out.shape());
    auto pdout = dout.f32();
    auto pout = out.f32();
    for (std::size_t i = 0; i < routed.size(); ++i) {
      const Assignment& a = routed[i];
      const float* gy = pdy.data() + static_cast<std::int64_t>(a.token) * d;
      const float* po = pout.data() + static_cast<std::int64_t>(i) * d;
      float* pdo = pdout.data() + static_cast<std::int64_t>(i) * d;
      double dw = 0.0;
      for (std::int64_t c = 0; c < d; ++c) {
        pdo[c] = a.gate_weight * gy[c];
        dw += double(gy[c]) * po[c];
      }
      dws[base + i] = static_cast<float>(dw);
    }
    const Tensor din = experts_[static_cast<std::size_t>(e)]->backward(dout);
    // Scatter expert input grads back to tokens.
    auto pdin = din.f32();
    auto pdx = dx.f32();
    for (std::size_t i = 0; i < routed.size(); ++i) {
      const Assignment& a = routed[i];
      const float* gi = pdin.data() + static_cast<std::int64_t>(i) * d;
      float* gx = pdx.data() + static_cast<std::int64_t>(a.token) * d;
      for (std::int64_t c = 0; c < d; ++c) gx[c] += gi[c];
    }
  }

  accumulate_combine_grad(cached_probs_, plan_, dws, config_, dprobs);

  if (config_.aux_loss_weight > 0.0) {
    add_aux_loss_grad(cached_probs_, config_.aux_loss_weight * grad_scale_,
                      dprobs);
  }

  if (two_gate_) {
    ops::add_(dx, two_gate_->backward(dprobs));
  } else {
    const Tensor dlogits = ops::row_softmax_backward(cached_probs_, dprobs);
    ops::add_(dx, gate_.backward(dlogits));
  }
  return dx;
}

std::vector<nn::Parameter*> MoELayer::parameters() {
  std::vector<nn::Parameter*> out =
      two_gate_ ? two_gate_->parameters() : gate_.parameters();
  for (const auto& expert : experts_)
    for (nn::Parameter* p : expert->parameters()) out.push_back(p);
  return out;
}

}  // namespace bgl::moe
