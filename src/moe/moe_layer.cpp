#include "moe/moe_layer.hpp"

#include <algorithm>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bgl::moe {

MoELayer::MoELayer(std::int64_t d_model, std::int64_t d_hidden,
                   GateConfig config, Rng& rng, const std::string& name)
    : config_(config),
      gate_(d_model, config.num_experts, rng, /*bias=*/false, name + ".gate"),
      noise_rng_(rng.fork(0x6F15E)) {
  config_.validate();
  if (config_.two_level_groups > 0) {
    two_gate_ = std::make_unique<TwoLevelGate>(
        d_model, config_.num_experts, config_.two_level_groups, rng,
        name + ".gate2");
  }
  experts_.reserve(static_cast<std::size_t>(config_.num_experts));
  for (int e = 0; e < config_.num_experts; ++e) {
    experts_.push_back(std::make_unique<nn::FeedForward>(
        d_model, d_hidden, rng, name + ".expert" + std::to_string(e)));
  }
}

Tensor MoELayer::forward(const Tensor& x) {
  obs::Span span("moe.forward");
  BGL_CHECK(x.ndim() == 2);
  cached_x_ = x;
  if (two_gate_) {
    cached_probs_ = two_gate_->forward(x);
  } else {
    Tensor logits = gate_.forward(x);
    if (config_.noisy_gating && training()) {
      for (float& v : logits.f32())
        v += static_cast<float>(noise_rng_.normal(0.0, config_.noise_std));
    }
    cached_probs_ = ops::row_softmax(logits);
  }
  plan_ = build_dispatch_plan(cached_probs_, config_);
  record_dispatch_metrics(plan_);

  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  Tensor y = Tensor::zeros({n, d});
  const std::size_t e_count = static_cast<std::size_t>(config_.num_experts);
  expert_inputs_.assign(e_count, {});
  expert_outputs_.assign(e_count, {});
  expert_rows_.assign(e_count, {});
  expert_weights_.assign(e_count, {});

  // Phase 1 — parallel: the per-expert gather -> FFN chains are fully
  // independent (each expert owns its slice of the plan and its own
  // parameters), so they run as pool tasks, one chunk per expert.
  core::pool().parallel_for(
      config_.num_experts, 1, [&](std::int64_t e0, std::int64_t e1) {
        for (std::int64_t e = e0; e < e1; ++e) {
          const std::size_t se = static_cast<std::size_t>(e);
          const auto routed = plan_.for_expert(static_cast<int>(e));
          auto& rows = expert_rows_[se];
          auto& weights = expert_weights_[se];
          rows.reserve(routed.size());
          weights.reserve(routed.size());
          for (const Assignment& a : routed) {
            rows.push_back(a.token);
            weights.push_back(a.gate_weight);
          }
          Tensor in = ops::gather_rows(x, rows);
          expert_inputs_[se] = in;
          if (in.dim(0) == 0) continue;
          expert_outputs_[se] = experts_[se]->forward(in);
        }
      });

  // Phase 2 — serial combine in fixed expert order: tokens routed to
  // several experts accumulate their partial outputs deterministically,
  // so the result is bitwise identical at any thread count.
  for (std::size_t e = 0; e < e_count; ++e) {
    if (!expert_outputs_[e].defined() || expert_outputs_[e].dim(0) == 0)
      continue;
    ops::scatter_add_rows(y, expert_rows_[e], expert_outputs_[e],
                          expert_weights_[e]);
  }
  return y;
}

Tensor MoELayer::forward_decode(const Tensor& x_row,
                                std::int64_t window_tokens,
                                std::span<std::int64_t> used,
                                std::vector<int>* executed) {
  BGL_CHECK(x_row.ndim() == 2 && x_row.dim(0) == 1);
  BGL_ENSURE(!training(), "forward_decode is an eval-mode (serving) path");
  BGL_CHECK(static_cast<int>(used.size()) == config_.num_experts);

  // Gate probabilities for the one row: both gates are row-local, so the
  // single-row forward matches the row's slice of the batch forward bitwise.
  Tensor probs = two_gate_ ? two_gate_->forward(x_row)
                           : ops::row_softmax(gate_.forward(x_row));
  auto prow = probs.f32();

  // Route as the last row of the oracle's padded window: same plan-wide
  // capacity, predecessor loads supplied by the caller.
  const std::int64_t capacity = plan_capacity(window_tokens, config_);
  std::vector<std::int64_t> demanded(
      static_cast<std::size_t>(config_.num_experts), 0);
  std::vector<std::int32_t> order;
  std::vector<Assignment> routed;
  const std::int64_t dropped = route_token_row(
      {prow.data(), static_cast<std::size_t>(config_.num_experts)}, config_,
      capacity, /*token=*/0, used, demanded, order, routed);

  // Combine in ascending expert order — the order the batch forward's
  // serial phase-2 loop accumulates partial outputs in.
  std::sort(routed.begin(), routed.end(),
            [](const Assignment& a, const Assignment& b) {
              return a.expert < b.expert;
            });
  Tensor y = Tensor::zeros(x_row.shape());
  static const std::int32_t kRow0[] = {0};
  for (const Assignment& a : routed) {
    const Tensor out =
        experts_[static_cast<std::size_t>(a.expert)]->forward(x_row);
    ops::scatter_add_rows(y, kRow0, out, {&a.gate_weight, 1});
    if (executed != nullptr) executed->push_back(a.expert);
  }
  if (obs::metrics_enabled()) {
    obs::count("moe.decode.tokens");
    obs::count("moe.decode.routed", static_cast<std::int64_t>(routed.size()));
    obs::count("moe.decode.dropped", dropped);
  }
  return y;
}

Tensor MoELayer::backward(const Tensor& dy) {
  obs::Span span("moe.backward");
  BGL_CHECK(cached_x_.defined());
  const std::int64_t n = cached_x_.dim(0);
  const std::int64_t d = cached_x_.dim(1);
  BGL_CHECK(dy.dim(0) == n && dy.dim(1) == d);

  Tensor dx = Tensor::zeros({n, d});
  Tensor dprobs = Tensor::zeros(cached_probs_.shape());
  const std::int64_t e_count = config_.num_experts;
  auto pdy = dy.f32();

  // dL/d(gate_weight) per assignment, in plan order. Each expert writes a
  // disjoint slice, so the parallel phase below is race-free.
  std::vector<float> dws(plan_.assignments.size(), 0.0f);
  std::vector<Tensor> expert_din(static_cast<std::size_t>(e_count));

  // Phase 1 — parallel: per-expert dout construction + FFN backward (each
  // expert mutates only its own parameter grads).
  core::pool().parallel_for(e_count, 1, [&](std::int64_t ee0,
                                            std::int64_t ee1) {
    for (std::int64_t e = ee0; e < ee1; ++e) {
      const std::size_t se = static_cast<std::size_t>(e);
      const auto routed = plan_.for_expert(static_cast<int>(e));
      if (routed.empty()) continue;
      const std::size_t base =
          static_cast<std::size_t>(plan_.expert_offsets[se]);
      const Tensor& out = expert_outputs_[se];
      // dL/d(expert output row i) = w_i * dy[token_i]; also accumulate
      // dL/dw_i = dy[token_i] · out_i.
      Tensor dout = Tensor::empty(out.shape());
      auto pdout = dout.f32();
      auto pout = out.f32();
      for (std::size_t i = 0; i < routed.size(); ++i) {
        const Assignment& a = routed[i];
        const float* gy = pdy.data() + static_cast<std::int64_t>(a.token) * d;
        const float* po = pout.data() + static_cast<std::int64_t>(i) * d;
        float* pdo = pdout.data() + static_cast<std::int64_t>(i) * d;
        double dw = 0.0;
        for (std::int64_t c = 0; c < d; ++c) {
          pdo[c] = a.gate_weight * gy[c];
          dw += double(gy[c]) * po[c];
        }
        dws[base + i] = static_cast<float>(dw);
      }
      expert_din[se] = experts_[se]->backward(dout);
    }
  });

  // Phase 2 — serial, fixed expert order: scatter expert input grads back
  // to tokens. Tokens with several surviving assignments accumulate their
  // partials deterministically here.
  auto pdx = dx.f32();
  for (int e = 0; e < e_count; ++e) {
    const auto routed = plan_.for_expert(e);
    if (routed.empty()) continue;
    auto pdin = expert_din[static_cast<std::size_t>(e)].f32();
    for (std::size_t i = 0; i < routed.size(); ++i) {
      const Assignment& a = routed[i];
      const float* gi = pdin.data() + static_cast<std::int64_t>(i) * d;
      float* gx = pdx.data() + static_cast<std::int64_t>(a.token) * d;
      for (std::int64_t c = 0; c < d; ++c) gx[c] += gi[c];
    }
  }

  accumulate_combine_grad(cached_probs_, plan_, dws, config_, dprobs);

  if (config_.aux_loss_weight > 0.0) {
    add_aux_loss_grad(cached_probs_, config_.aux_loss_weight * grad_scale_,
                      dprobs);
  }

  if (two_gate_) {
    ops::add_(dx, two_gate_->backward(dprobs));
  } else {
    const Tensor dlogits = ops::row_softmax_backward(cached_probs_, dprobs);
    ops::add_(dx, gate_.backward(dlogits));
  }
  return dx;
}

std::vector<nn::Parameter*> MoELayer::parameters() {
  std::vector<nn::Parameter*> out =
      two_gate_ ? two_gate_->parameters() : gate_.parameters();
  for (const auto& expert : experts_)
    for (nn::Parameter* p : expert->parameters()) out.push_back(p);
  return out;
}

}  // namespace bgl::moe
