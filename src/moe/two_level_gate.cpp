#include "moe/two_level_gate.hpp"

#include <cmath>

namespace bgl::moe {
namespace {

/// Softmax over each group's contiguous column block, in place layout:
/// for every row and every group g, columns [g*w, (g+1)*w) are normalized.
Tensor blockwise_softmax(const Tensor& logits, int groups) {
  const std::int64_t n = logits.dim(0);
  const std::int64_t e = logits.dim(1);
  const std::int64_t w = e / groups;
  Tensor out = Tensor::empty({n, e});
  auto pin = logits.f32();
  auto pout = out.f32();
  for (std::int64_t r = 0; r < n; ++r) {
    for (int g = 0; g < groups; ++g) {
      const float* in = pin.data() + r * e + g * w;
      float* o = pout.data() + r * e + g * w;
      float mx = in[0];
      for (std::int64_t c = 1; c < w; ++c) mx = std::max(mx, in[c]);
      double denom = 0.0;
      for (std::int64_t c = 0; c < w; ++c) {
        o[c] = std::exp(in[c] - mx);
        denom += o[c];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (std::int64_t c = 0; c < w; ++c) o[c] *= inv;
    }
  }
  return out;
}

/// Backward of blockwise_softmax: standard softmax Jacobian per block.
Tensor blockwise_softmax_backward(const Tensor& probs, const Tensor& dprobs,
                                  int groups) {
  const std::int64_t n = probs.dim(0);
  const std::int64_t e = probs.dim(1);
  const std::int64_t w = e / groups;
  Tensor dx = Tensor::empty({n, e});
  auto pp = probs.f32();
  auto pd = dprobs.f32();
  auto px = dx.f32();
  for (std::int64_t r = 0; r < n; ++r) {
    for (int g = 0; g < groups; ++g) {
      const float* y = pp.data() + r * e + g * w;
      const float* dy = pd.data() + r * e + g * w;
      float* o = px.data() + r * e + g * w;
      double dot = 0.0;
      for (std::int64_t c = 0; c < w; ++c) dot += double(y[c]) * dy[c];
      for (std::int64_t c = 0; c < w; ++c)
        o[c] = y[c] * (dy[c] - static_cast<float>(dot));
    }
  }
  return dx;
}

}  // namespace

TwoLevelGate::TwoLevelGate(std::int64_t d_model, int num_experts, int groups,
                           Rng& rng, const std::string& name)
    : d_model_(d_model),
      num_experts_(num_experts),
      groups_(groups),
      group_gate_(d_model, groups, rng, /*bias=*/false, name + ".group"),
      expert_gate_(d_model, num_experts, rng, /*bias=*/false,
                   name + ".expert") {
  BGL_ENSURE(groups >= 1 && num_experts >= 1 && num_experts % groups == 0,
             "experts " << num_experts << " must divide into " << groups
                        << " groups");
}

Tensor TwoLevelGate::forward(const Tensor& x) {
  BGL_CHECK(x.ndim() == 2 && x.dim(1) == d_model_);
  cached_group_probs_ = ops::row_softmax(group_gate_.forward(x));
  cached_expert_probs_ =
      blockwise_softmax(expert_gate_.forward(x), groups_);

  // p(e) = p_group(g(e)) * p(e | g(e)).
  const std::int64_t n = x.dim(0);
  const std::int64_t w = experts_per_group();
  Tensor probs = Tensor::empty({n, static_cast<std::int64_t>(num_experts_)});
  auto pg = cached_group_probs_.f32();
  auto pe = cached_expert_probs_.f32();
  auto pp = probs.f32();
  for (std::int64_t r = 0; r < n; ++r) {
    for (int g = 0; g < groups_; ++g) {
      const float group_p = pg[r * groups_ + g];
      for (std::int64_t c = 0; c < w; ++c) {
        const std::int64_t e = g * w + c;
        pp[r * num_experts_ + e] = group_p * pe[r * num_experts_ + e];
      }
    }
  }
  return probs;
}

Tensor TwoLevelGate::backward(const Tensor& dprobs) {
  BGL_CHECK(cached_group_probs_.defined());
  const std::int64_t n = dprobs.dim(0);
  BGL_CHECK(dprobs.dim(1) == num_experts_);
  const std::int64_t w = experts_per_group();

  // Product rule: dL/dp_group[g] = Σ_{e∈g} dL/dp_e * p_in(e);
  //               dL/dp_in(e)   = dL/dp_e * p_group(g(e)).
  Tensor dgroup = Tensor::zeros({n, static_cast<std::int64_t>(groups_)});
  Tensor dexpert = Tensor::empty(cached_expert_probs_.shape());
  auto pd = dprobs.f32();
  auto pg = cached_group_probs_.f32();
  auto pe = cached_expert_probs_.f32();
  auto pdg = dgroup.f32();
  auto pde = dexpert.f32();
  for (std::int64_t r = 0; r < n; ++r) {
    for (int g = 0; g < groups_; ++g) {
      double acc = 0.0;
      for (std::int64_t c = 0; c < w; ++c) {
        const std::int64_t e = g * w + c;
        acc += double(pd[r * num_experts_ + e]) * pe[r * num_experts_ + e];
        pde[r * num_experts_ + e] =
            pd[r * num_experts_ + e] * pg[r * groups_ + g];
      }
      pdg[r * groups_ + g] = static_cast<float>(acc);
    }
  }

  const Tensor dgroup_logits =
      ops::row_softmax_backward(cached_group_probs_, dgroup);
  const Tensor dexpert_logits =
      blockwise_softmax_backward(cached_expert_probs_, dexpert, groups_);

  Tensor dx = group_gate_.backward(dgroup_logits);
  ops::add_(dx, expert_gate_.backward(dexpert_logits));
  return dx;
}

std::vector<nn::Parameter*> TwoLevelGate::parameters() {
  std::vector<nn::Parameter*> out = group_gate_.parameters();
  for (nn::Parameter* p : expert_gate_.parameters()) out.push_back(p);
  return out;
}

}  // namespace bgl::moe
