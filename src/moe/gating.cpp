#include "moe/gating.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.hpp"
#include "core/math_util.hpp"
#include "obs/metrics.hpp"

namespace bgl::moe {

void DispatchStats::absorb(const DispatchPlan& plan) {
  ++plans;
  routed += static_cast<std::int64_t>(plan.assignments.size());
  for (const std::int64_t d : plan.demanded_load) demanded += d;
  dropped += plan.dropped;
  capacity_slots += plan.capacity * plan.num_experts();
  for (int e = 0; e < plan.num_experts(); ++e) {
    const std::int64_t load = plan.expert_offsets[e + 1] - plan.expert_offsets[e];
    max_expert_load = std::max(max_expert_load, load);
  }
}

DispatchStats& DispatchStats::operator+=(const DispatchStats& other) {
  plans += other.plans;
  routed += other.routed;
  demanded += other.demanded;
  dropped += other.dropped;
  capacity_slots += other.capacity_slots;
  max_expert_load = std::max(max_expert_load, other.max_expert_load);
  return *this;
}

void record_dispatch_metrics(const DispatchPlan& plan) {
  if (!obs::metrics_enabled()) return;
  obs::count("moe.plans");
  obs::count("moe.assignments.routed",
             static_cast<std::int64_t>(plan.assignments.size()));
  obs::count("moe.assignments.dropped", plan.dropped);
  obs::set_gauge("moe.capacity", static_cast<double>(plan.capacity));
  obs::observe("moe.aux_loss", plan.aux_loss);
  for (int e = 0; e < plan.num_experts(); ++e) {
    obs::observe("moe.expert.demanded_load",
                 static_cast<double>(
                     plan.demanded_load[static_cast<std::size_t>(e)]));
    obs::observe("moe.expert.actual_load",
                 static_cast<double>(plan.expert_offsets[e + 1] -
                                     plan.expert_offsets[e]));
  }
}

void GateConfig::validate() const {
  BGL_ENSURE(num_experts >= 1, "num_experts >= 1, got " << num_experts);
  BGL_ENSURE(top_k >= 1 && top_k <= num_experts,
             "top_k " << top_k << " out of range for " << num_experts
                      << " experts");
  BGL_ENSURE(capacity_factor > 0.0, "capacity_factor must be positive");
  BGL_ENSURE(aux_loss_weight >= 0.0, "aux_loss_weight must be >= 0");
  BGL_ENSURE(noise_std >= 0.0, "noise_std must be >= 0");
  BGL_ENSURE(two_level_groups >= 0 &&
                 (two_level_groups == 0 ||
                  num_experts % two_level_groups == 0),
             "two_level_groups " << two_level_groups << " must divide "
                                 << num_experts);
  BGL_ENSURE(!(two_level_groups > 0 && noisy_gating),
             "noisy gating is not supported with the two-level gate");
}

std::span<const Assignment> DispatchPlan::for_expert(int e) const {
  BGL_CHECK(e >= 0 && e < num_experts());
  const auto b = static_cast<std::size_t>(expert_offsets[e]);
  const auto n = static_cast<std::size_t>(expert_offsets[e + 1]) - b;
  return {assignments.data() + b, n};
}

std::vector<std::int64_t> DispatchPlan::actual_load() const {
  std::vector<std::int64_t> load(static_cast<std::size_t>(num_experts()));
  for (int e = 0; e < num_experts(); ++e)
    load[static_cast<std::size_t>(e)] =
        expert_offsets[e + 1] - expert_offsets[e];
  return load;
}

std::int64_t plan_capacity(std::int64_t n_tokens, const GateConfig& config) {
  // capacity = max(1, ceil(cf * N * k / E)).
  return static_cast<std::int64_t>(std::max(
      1.0, std::ceil(config.capacity_factor * static_cast<double>(n_tokens) *
                     config.top_k / static_cast<double>(config.num_experts))));
}

std::int64_t route_token_row(std::span<const float> row,
                             const GateConfig& config, std::int64_t capacity,
                             std::int32_t token, std::span<std::int64_t> used,
                             std::span<std::int64_t> demanded_load,
                             std::vector<std::int32_t>& order_scratch,
                             std::vector<Assignment>& out) {
  BGL_CHECK(static_cast<int>(row.size()) == config.num_experts);
  BGL_CHECK(used.size() == row.size() && demanded_load.size() == row.size());
  order_scratch.resize(row.size());
  std::iota(order_scratch.begin(), order_scratch.end(), 0);
  std::stable_sort(order_scratch.begin(), order_scratch.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return row[static_cast<std::size_t>(a)] >
                            row[static_cast<std::size_t>(b)];
                   });
  // Demanded load counts the un-capacitated top-k routing.
  for (int k = 0; k < config.top_k; ++k)
    ++demanded_load[static_cast<std::size_t>(
        order_scratch[static_cast<std::size_t>(k)])];

  // Combine weights over the selected experts.
  float norm = 1.0f;
  if (config.normalize_topk && config.top_k > 1) {
    float s = 0.0f;
    for (int k = 0; k < config.top_k; ++k)
      s += row[static_cast<std::size_t>(
          order_scratch[static_cast<std::size_t>(k)])];
    norm = s > 0.0f ? 1.0f / s : 1.0f;
  }

  std::int64_t dropped = 0;
  for (int k = 0; k < config.top_k; ++k) {
    const std::int32_t expert = order_scratch[static_cast<std::size_t>(k)];
    if (used[static_cast<std::size_t>(expert)] < capacity) {
      ++used[static_cast<std::size_t>(expert)];
      out.push_back(
          {token, expert, row[static_cast<std::size_t>(expert)] * norm});
      continue;
    }
    if (config.balanced_redispatch) {
      // BaGuaLu-style bounded load: walk the remaining experts in
      // preference order and take the first with free capacity.
      bool placed = false;
      for (std::size_t j = static_cast<std::size_t>(config.top_k);
           j < order_scratch.size(); ++j) {
        const std::int32_t alt = order_scratch[j];
        if (used[static_cast<std::size_t>(alt)] < capacity) {
          ++used[static_cast<std::size_t>(alt)];
          out.push_back(
              {token, alt, row[static_cast<std::size_t>(alt)] * norm});
          placed = true;
          break;
        }
      }
      if (placed) continue;
    }
    ++dropped;
  }
  return dropped;
}

DispatchPlan build_dispatch_plan(const Tensor& probs,
                                 const GateConfig& config) {
  config.validate();
  BGL_CHECK(probs.ndim() == 2);
  const std::int64_t n = probs.dim(0);
  const std::int64_t e_count = probs.dim(1);
  BGL_ENSURE(e_count == config.num_experts,
             "probs have " << e_count << " experts, config says "
                           << config.num_experts);

  DispatchPlan plan;
  plan.demanded_load.assign(static_cast<std::size_t>(e_count), 0);
  plan.capacity = plan_capacity(n, config);

  auto pp = probs.f32();
  std::vector<std::int64_t> used(static_cast<std::size_t>(e_count), 0);
  std::vector<std::vector<Assignment>> per_expert(
      static_cast<std::size_t>(e_count));
  std::vector<std::int32_t> order;
  std::vector<Assignment> row_out;

  for (std::int64_t t = 0; t < n; ++t) {
    const float* row = pp.data() + t * e_count;
    row_out.clear();
    plan.dropped += route_token_row(
        {row, static_cast<std::size_t>(e_count)}, config, plan.capacity,
        static_cast<std::int32_t>(t), used, plan.demanded_load, order,
        row_out);
    // Regroup by expert: each token contributes at most one assignment per
    // expert, so appending in token order reproduces the grouped layout.
    for (const Assignment& a : row_out)
      per_expert[static_cast<std::size_t>(a.expert)].push_back(a);
  }

  plan.expert_offsets.assign(static_cast<std::size_t>(e_count) + 1, 0);
  for (std::int64_t e = 0; e < e_count; ++e) {
    plan.expert_offsets[static_cast<std::size_t>(e) + 1] =
        plan.expert_offsets[static_cast<std::size_t>(e)] +
        static_cast<std::int32_t>(per_expert[static_cast<std::size_t>(e)].size());
    for (const Assignment& a : per_expert[static_cast<std::size_t>(e)])
      plan.assignments.push_back(a);
  }
  plan.aux_loss = aux_balance_loss(probs);
  return plan;
}

double aux_balance_loss(const Tensor& probs) {
  BGL_CHECK(probs.ndim() == 2);
  const std::int64_t n = probs.dim(0);
  const std::int64_t e_count = probs.dim(1);
  BGL_CHECK(n > 0);
  auto pp = probs.f32();
  std::vector<double> mean_prob(static_cast<std::size_t>(e_count), 0.0);
  std::vector<double> top1_frac(static_cast<std::size_t>(e_count), 0.0);
  for (std::int64_t t = 0; t < n; ++t) {
    const float* row = pp.data() + t * e_count;
    std::int64_t best = 0;
    for (std::int64_t e = 1; e < e_count; ++e)
      if (row[e] > row[best]) best = e;
    top1_frac[static_cast<std::size_t>(best)] += 1.0;
    for (std::int64_t e = 0; e < e_count; ++e)
      mean_prob[static_cast<std::size_t>(e)] += row[e];
  }
  double loss = 0.0;
  for (std::int64_t e = 0; e < e_count; ++e) {
    loss += (top1_frac[static_cast<std::size_t>(e)] / n) *
            (mean_prob[static_cast<std::size_t>(e)] / n);
  }
  return loss * static_cast<double>(e_count);
}

void add_aux_loss_grad(const Tensor& probs, double weight, Tensor& dprobs) {
  BGL_CHECK(probs.same_shape(dprobs));
  const std::int64_t n = probs.dim(0);
  const std::int64_t e_count = probs.dim(1);
  auto pp = probs.f32();
  auto pd = dprobs.f32();
  std::vector<double> top1_frac(static_cast<std::size_t>(e_count), 0.0);
  for (std::int64_t t = 0; t < n; ++t) {
    const float* row = pp.data() + t * e_count;
    std::int64_t best = 0;
    for (std::int64_t e = 1; e < e_count; ++e)
      if (row[e] > row[best]) best = e;
    top1_frac[static_cast<std::size_t>(best)] += 1.0;
  }
  for (auto& f : top1_frac) f /= static_cast<double>(n);
  // d/dp_te of E * Σ_e f_e * meanprob_e (f treated constant, straight-through
  // for the argmax) = E * f_e / N.
  for (std::int64_t t = 0; t < n; ++t) {
    for (std::int64_t e = 0; e < e_count; ++e) {
      pd[t * e_count + e] += static_cast<float>(
          weight * static_cast<double>(e_count) *
          top1_frac[static_cast<std::size_t>(e)] / static_cast<double>(n));
    }
  }
}

void accumulate_combine_grad(const Tensor& probs, const DispatchPlan& plan,
                             std::span<const float> dL_dw,
                             const GateConfig& config, Tensor& dprobs) {
  BGL_CHECK(probs.same_shape(dprobs));
  BGL_CHECK(dL_dw.size() == plan.assignments.size());
  const std::int64_t n = probs.dim(0);
  const std::int64_t e_count = probs.dim(1);
  auto pp = probs.f32();
  auto pd = dprobs.f32();

  if (!(config.normalize_topk && config.top_k > 1)) {
    for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
      const Assignment& a = plan.assignments[i];
      pd[a.token * e_count + a.expert] += dL_dw[i];
    }
    return;
  }

  // Recover s_t = p/w from any surviving assignment of token t.
  std::vector<float> token_norm(static_cast<std::size_t>(n), 0.0f);
  std::vector<double> cross(static_cast<std::size_t>(n), 0.0);
  for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
    const Assignment& a = plan.assignments[i];
    if (a.gate_weight > 0.0f) {
      token_norm[static_cast<std::size_t>(a.token)] =
          pp[a.token * e_count + a.expert] / a.gate_weight;
    }
    cross[static_cast<std::size_t>(a.token)] +=
        static_cast<double>(dL_dw[i]) * a.gate_weight;
  }
  for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
    const Assignment& a = plan.assignments[i];
    const float s = token_norm[static_cast<std::size_t>(a.token)];
    if (s <= 0.0f) continue;
    pd[a.token * e_count + a.expert] += static_cast<float>(
        (static_cast<double>(dL_dw[i]) -
         cross[static_cast<std::size_t>(a.token)]) /
        s);
  }
}

}  // namespace bgl::moe
