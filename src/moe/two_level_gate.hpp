// Two-level (hierarchical) gate: route to a group of experts, then to an
// expert inside the group.
//
// Flat softmax gating costs O(d·E) per token, which at the 174T regime
// (hundreds of thousands of experts per layer) rivals the expert compute
// itself. The two-level factorization p(e) = p_group(g(e)) · p(e | g(e))
// reduces routing cost to O(d·(G + E/G)) when expert logits are evaluated
// lazily for the selected groups.
//
// This implementation materializes the full [N, E] probability tensor (the
// product distribution) so it plugs into the existing dispatch-plan and
// gradient machinery unchanged — exact numerics, library-scale cost; the
// asymptotic FLOP win is captured by the performance model
// (perf::TrainSetup::two_level_gating).
#pragma once

#include "nn/linear.hpp"

namespace bgl::moe {

class TwoLevelGate {
 public:
  /// E experts in `groups` groups of E/groups each (must divide evenly).
  /// With groups == 1 this degenerates to exactly the flat softmax gate.
  TwoLevelGate(std::int64_t d_model, int num_experts, int groups, Rng& rng,
               const std::string& name = "two_level_gate");

  /// Full gate probabilities [N, E]; rows sum to 1.
  Tensor forward(const Tensor& x);

  /// Backpropagates dL/dprobs through both softmaxes and both linear
  /// gates; accumulates parameter gradients; returns dL/dx.
  Tensor backward(const Tensor& dprobs);

  std::vector<nn::Parameter*> parameters();

  [[nodiscard]] int num_experts() const { return num_experts_; }
  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] int experts_per_group() const {
    return num_experts_ / groups_;
  }

 private:
  std::int64_t d_model_;
  int num_experts_;
  int groups_;
  nn::Linear group_gate_;   // [d, G]
  nn::Linear expert_gate_;  // [d, E] (softmax within each group's block)

  Tensor cached_group_probs_;   // [N, G]
  Tensor cached_expert_probs_;  // [N, E], block-normalized within groups
};

}  // namespace bgl::moe
