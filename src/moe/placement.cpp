#include "moe/placement.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace bgl::moe {

Placement blocked_placement(int num_experts, int ranks) {
  BGL_ENSURE(ranks >= 1 && num_experts >= ranks &&
                 num_experts % ranks == 0,
             "experts " << num_experts << " must divide over " << ranks);
  const int per_rank = num_experts / ranks;
  Placement placement(static_cast<std::size_t>(num_experts));
  for (int e = 0; e < num_experts; ++e)
    placement[static_cast<std::size_t>(e)] = e / per_rank;
  return placement;
}

Placement load_aware_placement(std::span<const std::int64_t> expert_loads,
                               int ranks) {
  const int num_experts = static_cast<int>(expert_loads.size());
  BGL_ENSURE(ranks >= 1 && num_experts >= ranks &&
                 num_experts % ranks == 0,
             "experts " << num_experts << " must divide over " << ranks);
  const int per_rank = num_experts / ranks;

  std::vector<int> order(static_cast<std::size_t>(num_experts));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return expert_loads[static_cast<std::size_t>(a)] >
           expert_loads[static_cast<std::size_t>(b)];
  });

  Placement placement(static_cast<std::size_t>(num_experts), -1);
  std::vector<std::int64_t> rank_load(static_cast<std::size_t>(ranks), 0);
  std::vector<int> rank_count(static_cast<std::size_t>(ranks), 0);
  for (const int e : order) {
    // Least-loaded rank with free slots.
    int best = -1;
    for (int r = 0; r < ranks; ++r) {
      if (rank_count[static_cast<std::size_t>(r)] >= per_rank) continue;
      if (best < 0 || rank_load[static_cast<std::size_t>(r)] <
                          rank_load[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    BGL_CHECK(best >= 0);
    placement[static_cast<std::size_t>(e)] = best;
    rank_load[static_cast<std::size_t>(best)] +=
        expert_loads[static_cast<std::size_t>(e)];
    ++rank_count[static_cast<std::size_t>(best)];
  }
  return placement;
}

std::int64_t max_rank_load(const Placement& placement,
                           std::span<const std::int64_t> expert_loads,
                           int ranks) {
  BGL_CHECK(placement.size() == expert_loads.size());
  std::vector<std::int64_t> rank_load(static_cast<std::size_t>(ranks), 0);
  for (std::size_t e = 0; e < placement.size(); ++e) {
    const int r = placement[e];
    BGL_CHECK(r >= 0 && r < ranks);
    rank_load[static_cast<std::size_t>(r)] += expert_loads[e];
  }
  return *std::max_element(rank_load.begin(), rank_load.end());
}

double placement_imbalance(const Placement& placement,
                           std::span<const std::int64_t> expert_loads,
                           int ranks) {
  double total = 0.0;
  for (const auto load : expert_loads) total += static_cast<double>(load);
  if (total <= 0.0) return 0.0;
  const double mean = total / ranks;
  return static_cast<double>(max_rank_load(placement, expert_loads, ranks)) /
         mean;
}

}  // namespace bgl::moe
