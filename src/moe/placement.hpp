// Expert placement: assigning experts to ranks under observed load.
//
// With skewed routing, the default blocked placement (expert e on rank
// e/EPR) can put several hot experts on one rank, making that rank the
// straggler of every synchronous MoE step. Load-aware placement spreads
// hot experts across ranks (and across supernodes, where the trunk is the
// scarce resource). This module provides the placement algorithms and
// their quality metrics; bench_placement evaluates them against observed
// load traces.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bgl::moe {

/// A placement maps global expert id -> rank.
using Placement = std::vector<int>;

/// Blocked default: expert e -> e / (experts/ranks).
Placement blocked_placement(int num_experts, int ranks);

/// Greedy LPT (longest processing time): sort experts by load descending,
/// place each on the currently least-loaded rank, capacity experts/ranks
/// per rank. Near-optimal makespan for balanced assignment.
Placement load_aware_placement(std::span<const std::int64_t> expert_loads,
                               int ranks);

/// Max per-rank load under the placement (the synchronous step's critical
/// path is proportional to this).
std::int64_t max_rank_load(const Placement& placement,
                           std::span<const std::int64_t> expert_loads,
                           int ranks);

/// Load imbalance factor (max/mean) of the placement; 1.0 is perfect.
double placement_imbalance(const Placement& placement,
                           std::span<const std::int64_t> expert_loads,
                           int ranks);

}  // namespace bgl::moe
