// Serial (single-process) MoE layer: softmax gate over E expert FFNs with
// capacity-limited top-k dispatch and weighted combine.
//
// This is the numerical reference implementation. The distributed versions
// in bgl::parallel (ExpertParallel / MoDaParallel) must produce the same
// outputs for the same inputs and gate state — tests enforce that
// equivalence, which is how we know the dispatch collectives are wired
// correctly.
#pragma once

#include <memory>

#include "moe/gating.hpp"
#include "moe/two_level_gate.hpp"
#include "nn/feedforward.hpp"
#include "nn/linear.hpp"

namespace bgl::moe {

class MoELayer : public nn::Layer {
 public:
  /// `d_hidden` is the expert FFN width. Each expert is an independent
  /// FeedForward; the gate is a bias-free Linear [d_model, E].
  MoELayer(std::int64_t d_model, std::int64_t d_hidden, GateConfig config,
           Rng& rng, const std::string& name = "moe");

  /// Routes x:[N, d_model] through experts; tokens whose assignments were
  /// all dropped pass through as zero (the transformer residual carries
  /// them, as in GShard).
  Tensor forward(const Tensor& x) override;

  Tensor backward(const Tensor& dy) override;

  /// Serving decode path (DESIGN.md §14): routes a single row exactly as it
  /// would route as the *last* row of a `window_tokens`-sized batch whose
  /// earlier rows already consumed the slots in `used`. Because
  /// build_dispatch_plan grants capacity in strict row order, the result is
  /// bitwise-identical to that row of the batch forward. `used` carries the
  /// per-expert loads of the window's earlier rows and is bumped by this
  /// row's acceptances; `executed` (optional) collects the experts that ran,
  /// in ascending index order (the batch combine order). Eval-mode only —
  /// noisy gating would consume the noise stream differently than the batch
  /// forward — and, like forward(), it overwrites the layer's activation
  /// caches: never interleave it between a training forward and backward.
  Tensor forward_decode(const Tensor& x_row, std::int64_t window_tokens,
                        std::span<std::int64_t> used,
                        std::vector<int>* executed = nullptr);

  std::vector<nn::Parameter*> parameters() override;

  /// Routing of the last forward (for load statistics / tests).
  [[nodiscard]] const DispatchPlan& last_plan() const { return plan_; }

  /// Weighted aux loss of the last forward. Add to the task loss for
  /// reporting; its gradient is already injected in backward().
  [[nodiscard]] double last_aux_loss() const {
    return config_.aux_loss_weight * plan_.aux_loss;
  }

  /// Scales the aux-loss gradient injected during backward. Mixed-precision
  /// trainers set this to the loss scale so the aux gradient survives the
  /// global unscale exactly like the task-loss gradient (which arrives
  /// pre-scaled through dy).
  void set_grad_scale(double scale) {
    BGL_CHECK(scale > 0.0);
    grad_scale_ = scale;
  }

  [[nodiscard]] const GateConfig& config() const { return config_; }
  /// Flat gate accessor; only valid when two_level_groups == 0.
  [[nodiscard]] nn::Linear& gate() {
    BGL_CHECK(!two_gate_);
    return gate_;
  }
  /// Two-level gate accessor; only valid when two_level_groups > 0.
  [[nodiscard]] TwoLevelGate& two_level_gate() {
    BGL_CHECK(two_gate_);
    return *two_gate_;
  }
  [[nodiscard]] nn::FeedForward& expert(int e) { return *experts_.at(static_cast<std::size_t>(e)); }

 private:
  GateConfig config_;
  double grad_scale_ = 1.0;
  nn::Linear gate_;                       // flat gate (two_level_groups == 0)
  std::unique_ptr<TwoLevelGate> two_gate_;  // hierarchical gate (else)
  std::vector<std::unique_ptr<nn::FeedForward>> experts_;
  Rng noise_rng_;

  // Forward caches.
  Tensor cached_x_;
  Tensor cached_probs_;                  // [N, E]
  DispatchPlan plan_;
  std::vector<Tensor> expert_inputs_;    // gathered rows per expert
  std::vector<Tensor> expert_outputs_;   // FFN outputs per expert
  // Routed token rows / combine weights per expert, cached by forward for
  // the deterministic serial combine (and reused in backward).
  std::vector<std::vector<std::int32_t>> expert_rows_;
  std::vector<std::vector<float>> expert_weights_;
};

}  // namespace bgl::moe
