// MoE gating and dispatch planning.
//
// This reproduces the routing machinery BaGuaLu's MoE layer is built on:
// top-k softmax gating (GShard/Switch style) with a capacity limit per
// expert, an auxiliary load-balancing loss, and — the BaGuaLu-specific
// piece — a *balanced re-dispatch* pass that reroutes capacity-overflow
// tokens to their next-best expert with free slots instead of dropping
// them, bounding per-expert load and hence the all-to-all skew.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace bgl::moe {

/// Gate behaviour knobs.
struct GateConfig {
  int num_experts = 8;
  int top_k = 2;                   // experts per token (1 or 2 typical)
  double capacity_factor = 1.25;   // capacity = ceil(cf * N * k / E)
  double aux_loss_weight = 1e-2;   // weight of the load-balancing loss
  bool normalize_topk = true;      // renormalize the k selected gate probs
  bool balanced_redispatch = false;  // reroute overflow instead of dropping
  bool noisy_gating = false;       // add N(0, noise_std) to logits pre-softmax
  double noise_std = 1.0;
  /// > 0 selects the hierarchical two-level gate with this many expert
  /// groups (must divide num_experts; incompatible with noisy_gating).
  /// 0 = flat softmax gate.
  int two_level_groups = 0;

  void validate() const;
};

/// One surviving (token, expert) route.
struct Assignment {
  std::int32_t token = 0;    // row in the layer input
  std::int32_t expert = 0;   // destination expert
  float gate_weight = 0.0f;  // combine coefficient
};

/// Routing decision for one batch of tokens.
struct DispatchPlan {
  /// Assignments grouped by expert: expert e owns
  /// [expert_offsets[e], expert_offsets[e+1]).
  std::vector<Assignment> assignments;
  std::vector<std::int32_t> expert_offsets;  // size num_experts + 1

  std::vector<std::int64_t> demanded_load;  // pre-capacity load per expert
  std::int64_t capacity = 0;                // slots per expert
  std::int64_t dropped = 0;                 // assignments lost to capacity
  double aux_loss = 0.0;                    // load-balancing loss value

  [[nodiscard]] int num_experts() const {
    return static_cast<int>(expert_offsets.size()) - 1;
  }
  /// Assignments routed to expert e.
  [[nodiscard]] std::span<const Assignment> for_expert(int e) const;
  /// Post-capacity load per expert.
  [[nodiscard]] std::vector<std::int64_t> actual_load() const;
};

/// Routing statistics accumulated over one or more dispatch plans (one per
/// MoE layer per micro-batch). Surfaced in StepStats/DistStepStats so a
/// training loop can watch drop rate and load skew without touching the
/// metrics registry.
struct DispatchStats {
  std::int64_t plans = 0;           // plans absorbed
  std::int64_t routed = 0;          // assignments that survived capacity
  std::int64_t demanded = 0;        // pre-capacity (token, expert) demands
  std::int64_t dropped = 0;         // assignments lost to capacity
  std::int64_t capacity_slots = 0;  // capacity * num_experts, summed
  std::int64_t max_expert_load = 0; // peak post-capacity load of any expert

  void absorb(const DispatchPlan& plan);
  DispatchStats& operator+=(const DispatchStats& other);

  /// Fraction of demanded routes lost to capacity (0 when nothing demanded).
  [[nodiscard]] double drop_rate() const {
    return demanded == 0 ? 0.0
                         : static_cast<double>(dropped) /
                               static_cast<double>(demanded);
  }
};

/// Records one plan's routing into the metrics registry: per-expert demanded
/// vs post-capacity load histograms, routed/dropped counters, the capacity
/// gauge and the aux-loss histogram. No-op when metrics are disabled; never
/// feeds back into routing (determinism-neutral).
void record_dispatch_metrics(const DispatchPlan& plan);

/// Builds a dispatch plan from gate probabilities probs:[N, E].
/// `noise_rng` is unused here (noise applies to logits in Gate); kept for
/// deterministic tie-breaking extensions.
DispatchPlan build_dispatch_plan(const Tensor& probs, const GateConfig& config);

/// Plan-wide capacity for a batch of `n_tokens` rows:
/// max(1, ceil(cf * N * k / E)). Shared by build_dispatch_plan and the
/// serving decode path, which must agree on the slot budget bitwise.
[[nodiscard]] std::int64_t plan_capacity(std::int64_t n_tokens,
                                         const GateConfig& config);

/// Routes one token row under shared capacity counters — the per-token body
/// of build_dispatch_plan, exposed so the serving decode path (DESIGN.md
/// §14) can reproduce a window-sized batch's routing one row at a time.
/// Slots are granted in strict row order, so a row's outcome depends only
/// on the loads its predecessors left in `used`.
///
/// Appends the row's surviving assignments to `out` in selection order,
/// increments `used` for accepted experts and `demanded_load` for the
/// uncapacitated top-k, and returns the number of assignments lost to
/// capacity. `order_scratch` is caller-owned scratch (resized to E).
std::int64_t route_token_row(std::span<const float> row,
                             const GateConfig& config, std::int64_t capacity,
                             std::int32_t token, std::span<std::int64_t> used,
                             std::span<std::int64_t> demanded_load,
                             std::vector<std::int32_t>& order_scratch,
                             std::vector<Assignment>& out);

/// The GShard/Switch auxiliary balance loss: E * Σ_e f_e * P_e, where f_e is
/// the fraction of tokens whose top-1 expert is e and P_e the mean gate
/// probability of e. Returns the unweighted value.
double aux_balance_loss(const Tensor& probs);

/// Adds the aux-loss gradient (weight * E * f_e / N per element) into
/// dprobs, with f taken from the plan's demanded top-1 fractions.
void add_aux_loss_grad(const Tensor& probs, double weight, Tensor& dprobs);

/// Accumulates the combine-weight gradient into dprobs.
///
/// `dL_dw` holds dL/d(gate_weight) for every assignment in plan order
/// (grouped by expert, as stored in plan.assignments). Handles the optional
/// top-k renormalization (w = p/s): direct term dL_dw/s at the assignment's
/// own prob plus the -Σ(dL_dw·w)/s cross term on the token's surviving
/// assignments (straight-through across capacity drops). Shared by the
/// serial MoELayer and the distributed layers so their gate gradients are
/// bit-identical.
void accumulate_combine_grad(const Tensor& probs, const DispatchPlan& plan,
                             std::span<const float> dL_dw,
                             const GateConfig& config, Tensor& dprobs);

}  // namespace bgl::moe
