#include "tensor/dtype.hpp"

#include <cmath>
#include <limits>

namespace bgl {

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32: return "f32";
    case DType::kF16: return "f16";
    case DType::kBF16: return "bf16";
  }
  return "?";
}

namespace detail {

std::uint16_t f32_to_f16_bits(float f) {
  const std::uint32_t u = bits_of(f);
  const std::uint32_t sign = (u >> 16) & 0x8000u;
  const std::uint32_t abs = u & 0x7FFFFFFFu;

  if (abs > 0x7F800000u) {  // NaN
    return static_cast<std::uint16_t>(sign | 0x7E00u);
  }
  if (abs >= 0x47800000u) {  // >= 65536: overflow to inf (also maps +inf)
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs >= 0x38800000u) {  // normal half range [2^-14, 65504]
    // Re-bias exponent from 127 to 15 and round mantissa 23 -> 10 bits.
    const std::uint32_t mant = abs & 0x7FFFFFu;
    const std::uint32_t exp = (abs >> 23) - 127 + 15;
    std::uint32_t half = (exp << 10) | (mant >> 13);
    const std::uint32_t rem = mant & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  if (abs >= 0x33000000u) {  // subnormal half range
    // value = (0x800000|f) * 2^(e-150); subnormal half = mant_h * 2^-24,
    // so mant_h = mant >> (126 - e) with round-to-nearest-even.
    const int drop = 126 - static_cast<int>(abs >> 23);  // in [14, 24]
    const std::uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
    std::uint32_t half = mant >> drop;
    const std::uint32_t rem = mant & ((1u << drop) - 1);
    const std::uint32_t halfway = 1u << (drop - 1);
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  return static_cast<std::uint16_t>(sign);  // underflow to zero
}

float f16_bits_to_f32(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;
  if (exp == 0x1Fu) {  // inf / NaN
    return float_of(sign | 0x7F800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return float_of(sign);  // signed zero
    // Subnormal: value = mant * 2^-24.
    const float mag = std::ldexp(static_cast<float>(mant), -24);
    return sign ? -mag : mag;
  }
  return float_of(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

}  // namespace detail

float quantize(float x, DType dtype) {
  switch (dtype) {
    case DType::kF32: return x;
    case DType::kF16: return static_cast<float>(Half(x));
    case DType::kBF16: return static_cast<float>(BFloat16(x));
  }
  return x;
}

float dtype_max(DType dtype) {
  switch (dtype) {
    case DType::kF32: return std::numeric_limits<float>::max();
    case DType::kF16: return 65504.0f;
    case DType::kBF16: return detail::bf16_bits_to_f32(0x7F7Fu);
  }
  return 0.0f;
}

float dtype_min_normal(DType dtype) {
  switch (dtype) {
    case DType::kF32: return std::numeric_limits<float>::min();
    case DType::kF16: return 6.103515625e-05f;  // 2^-14
    case DType::kBF16: return std::numeric_limits<float>::min();
  }
  return 0.0f;
}

float dtype_epsilon(DType dtype) {
  switch (dtype) {
    case DType::kF32: return std::numeric_limits<float>::epsilon();
    case DType::kF16: return 0.0009765625f;  // 2^-10
    case DType::kBF16: return 0.0078125f;    // 2^-7
  }
  return 0.0f;
}

}  // namespace bgl
