// Internal GEMM driver backing ops::matmul / matmul_tn / matmul_nt.
//
// One packed-panel implementation serves all three transpose variants:
// operands are described by (pointer, leading dimension, transposed) and
// the packing routines absorb the layout difference, so the micro-kernel
// only ever sees contiguous panels. The micro-kernel is chosen once per
// process by core::simd_level(): an AVX2/FMA 6x16 register tile, or a
// portable scalar tile the compiler auto-vectorizes at baseline ISA.
//
// Determinism: every C element is accumulated in a fixed order (k-blocks
// outermost, sequential; registers accumulate within a block), and the
// parallel decomposition is over row blocks whose boundaries depend only
// on the shape — so results are bitwise identical at any thread count.
#pragma once

#include <cstdint>

namespace bgl::ops::detail {

/// C += op(A)·op(B) with C row-major [m, n] (leading dimension n).
/// op(A) is [m, k]: element (i, p) is a[i*lda + p], or a[p*lda + i] when
/// trans_a. op(B) is [k, n]: element (p, j) is b[p*ldb + j], or
/// b[j*ldb + p] when trans_b.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          std::int64_t lda, bool trans_a, const float* b, std::int64_t ldb,
          bool trans_b, float* c);

}  // namespace bgl::ops::detail
