#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace bgl::ops {
namespace {

void check_same(const Tensor& a, const Tensor& b, const char* what) {
  BGL_ENSURE(a.same_shape(b), what << ": shape mismatch "
                                   << shape_str(a.shape()) << " vs "
                                   << shape_str(b.shape()));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same(a, b, "add");
  Tensor out = a.clone();
  add_(out, b);
  return out;
}

void add_(Tensor& a, const Tensor& b) {
  check_same(a, b, "add_");
  auto pa = a.f32();
  auto pb = b.f32();
  for (std::size_t i = 0; i < pa.size(); ++i) pa[i] += pb[i];
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same(a, b, "sub");
  Tensor out = a.clone();
  auto po = out.f32();
  auto pb = b.f32();
  for (std::size_t i = 0; i < po.size(); ++i) po[i] -= pb[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same(a, b, "mul");
  Tensor out = a.clone();
  auto po = out.f32();
  auto pb = b.f32();
  for (std::size_t i = 0; i < po.size(); ++i) po[i] *= pb[i];
  return out;
}

void scale_(Tensor& a, float s) {
  for (float& v : a.f32()) v *= s;
}

void axpy_(Tensor& y, float alpha, const Tensor& x) {
  check_same(y, x, "axpy_");
  auto py = y.f32();
  auto px = x.f32();
  for (std::size_t i = 0; i < py.size(); ++i) py[i] += alpha * px[i];
}

void zero_(Tensor& a) { a.fill(0.0f); }

void quantize_(Tensor& a, DType dtype) {
  if (dtype == DType::kF32) return;
  for (float& v : a.f32()) v = quantize(v, dtype);
}

double sum(const Tensor& a) {
  double acc = 0.0;
  for (const float v : a.f32()) acc += v;
  return acc;
}

double mean(const Tensor& a) {
  BGL_CHECK(a.numel() > 0);
  return sum(a) / static_cast<double>(a.numel());
}

float abs_max(const Tensor& a) {
  float m = 0.0f;
  for (const float v : a.f32()) m = std::max(m, std::fabs(v));
  return m;
}

bool has_nonfinite(const Tensor& a) {
  for (const float v : a.f32())
    if (!std::isfinite(v)) return true;
  return false;
}

void col_sum(const Tensor& a, Tensor& out) {
  BGL_CHECK(a.ndim() == 2 && out.ndim() == 1);
  BGL_CHECK(out.dim(0) == a.dim(1));
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  auto pa = a.f32();
  auto po = out.f32();
  std::fill(po.begin(), po.end(), 0.0f);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = pa.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) po[c] += row[c];
  }
}

namespace {

// Cache-blocked GEMM core: C[m,n] += A[m,k] * B[k,n], all row-major.
void gemm_nn(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kBlock = 64;
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::int64_t i1 = std::min(i0 + kBlock, m);
    for (std::int64_t p0 = 0; p0 < k; p0 += kBlock) {
      const std::int64_t p1 = std::min(p0 + kBlock, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = c + i * n;
        for (std::int64_t p = p0; p < p1; ++p) {
          const float aval = a[i * k + p];
          if (aval == 0.0f) continue;
          const float* brow = b + p * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
      }
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  BGL_CHECK(a.ndim() == 2 && b.ndim() == 2);
  BGL_ENSURE(a.dim(1) == b.dim(0), "matmul " << shape_str(a.shape()) << " x "
                                             << shape_str(b.shape()));
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::zeros({m, n});
  gemm_nn(a.f32().data(), b.f32().data(), c.f32().data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  BGL_CHECK(a.ndim() == 2 && b.ndim() == 2);
  BGL_ENSURE(a.dim(0) == b.dim(0), "matmul_tn " << shape_str(a.shape())
                                                << " x " << shape_str(b.shape()));
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::zeros({m, n});
  const float* pa = a.f32().data();
  const float* pb = b.f32().data();
  float* pc = c.f32().data();
  // C[i,j] = sum_p A[p,i] * B[p,j]; iterate p outermost for streaming reads.
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aval = arow[i];
      if (aval == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  BGL_CHECK(a.ndim() == 2 && b.ndim() == 2);
  BGL_ENSURE(a.dim(1) == b.dim(1), "matmul_nt " << shape_str(a.shape())
                                                << " x " << shape_str(b.shape()));
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c = Tensor::zeros({m, n});
  const float* pa = a.f32().data();
  const float* pb = b.f32().data();
  float* pc = c.f32().data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  BGL_CHECK(a.ndim() == 2);
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out = Tensor::empty({n, m});
  auto pa = a.f32();
  auto po = out.f32();
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  return out;
}

Tensor row_softmax(const Tensor& logits) {
  BGL_CHECK(logits.ndim() == 2);
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out = Tensor::empty({rows, cols});
  auto pin = logits.f32();
  auto pout = out.f32();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = pin.data() + r * cols;
    float* o = pout.data() + r * cols;
    float mx = in[0];
    for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double denom = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

Tensor row_softmax_backward(const Tensor& y, const Tensor& dy) {
  BGL_CHECK(y.ndim() == 2);
  BGL_CHECK(y.same_shape(dy));
  const std::int64_t rows = y.dim(0), cols = y.dim(1);
  Tensor dx = Tensor::empty({rows, cols});
  auto py = y.f32();
  auto pdy = dy.f32();
  auto pdx = dx.f32();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* yr = py.data() + r * cols;
    const float* dyr = pdy.data() + r * cols;
    float* dxr = pdx.data() + r * cols;
    double dot = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) dot += double(yr[c]) * dyr[c];
    for (std::int64_t c = 0; c < cols; ++c)
      dxr[c] = yr[c] * (dyr[c] - static_cast<float>(dot));
  }
  return dx;
}

namespace {

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

float gelu_scalar(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float gelu_grad_scalar(float x) {
  const float x3 = x * x * x;
  const float inner = kGeluC * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}

}  // namespace

Tensor gelu(const Tensor& x) {
  Tensor out = x.clone();
  for (float& v : out.f32()) v = gelu_scalar(v);
  return out;
}

Tensor gelu_backward(const Tensor& x, const Tensor& dy) {
  check_same(x, dy, "gelu_backward");
  Tensor dx = Tensor::empty(x.shape());
  auto px = x.f32();
  auto pdy = dy.f32();
  auto pdx = dx.f32();
  for (std::size_t i = 0; i < px.size(); ++i)
    pdx[i] = pdy[i] * gelu_grad_scalar(px[i]);
  return dx;
}

Tensor relu(const Tensor& x) {
  Tensor out = x.clone();
  for (float& v : out.f32()) v = std::max(v, 0.0f);
  return out;
}

Tensor relu_backward(const Tensor& x, const Tensor& dy) {
  check_same(x, dy, "relu_backward");
  Tensor dx = dy.clone();
  auto px = x.f32();
  auto pdx = dx.f32();
  for (std::size_t i = 0; i < px.size(); ++i)
    if (px[i] <= 0.0f) pdx[i] = 0.0f;
  return dx;
}

Tensor copy_rows(const Tensor& src, std::int64_t r0, std::int64_t r1) {
  BGL_CHECK(src.ndim() == 2);
  BGL_ENSURE(r0 >= 0 && r0 <= r1 && r1 <= src.dim(0),
             "copy_rows [" << r0 << "," << r1 << ") of " << src.dim(0));
  const std::int64_t cols = src.dim(1);
  Tensor out = Tensor::empty({std::max<std::int64_t>(r1 - r0, 0), cols});
  if (r1 > r0) {
    auto ps = src.f32();
    std::copy(ps.begin() + r0 * cols, ps.begin() + r1 * cols,
              out.f32().begin());
  }
  return out;
}

Tensor gather_rows(const Tensor& src, std::span<const std::int32_t> rows) {
  BGL_CHECK(src.ndim() == 2);
  const std::int64_t cols = src.dim(1);
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  Tensor out = Tensor::empty({n, cols});
  auto ps = src.f32();
  auto po = out.f32();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t r = rows[static_cast<std::size_t>(i)];
    BGL_ENSURE(r >= 0 && r < src.dim(0), "gather_rows row " << r);
    std::copy(ps.begin() + r * cols, ps.begin() + (r + 1) * cols,
              po.begin() + i * cols);
  }
  return out;
}

void set_rows(Tensor& dst, std::int64_t r0, const Tensor& src) {
  BGL_CHECK(dst.ndim() == 2 && src.ndim() == 2);
  BGL_CHECK(dst.dim(1) == src.dim(1));
  BGL_ENSURE(r0 >= 0 && r0 + src.dim(0) <= dst.dim(0),
             "set_rows at " << r0 << " size " << src.dim(0));
  const std::int64_t cols = dst.dim(1);
  auto ps = src.f32();
  auto pd = dst.f32();
  std::copy(ps.begin(), ps.end(), pd.begin() + r0 * cols);
}

void scatter_add_rows(Tensor& dst, std::span<const std::int32_t> rows,
                      const Tensor& src, std::span<const float> alpha) {
  BGL_CHECK(dst.ndim() == 2 && src.ndim() == 2);
  BGL_CHECK(dst.dim(1) == src.dim(1));
  BGL_CHECK(static_cast<std::int64_t>(rows.size()) == src.dim(0));
  BGL_CHECK(alpha.empty() || alpha.size() == rows.size());
  const std::int64_t cols = dst.dim(1);
  auto ps = src.f32();
  auto pd = dst.f32();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::int32_t r = rows[i];
    BGL_ENSURE(r >= 0 && r < dst.dim(0), "scatter_add row " << r);
    const float a = alpha.empty() ? 1.0f : alpha[i];
    const float* in = ps.data() + static_cast<std::int64_t>(i) * cols;
    float* out = pd.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) out[c] += a * in[c];
  }
}

}  // namespace bgl::ops
