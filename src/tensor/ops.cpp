#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BGL_OPS_AVX2 1
#include <immintrin.h>
#endif

#include "core/cpu.hpp"
#include "core/thread_pool.hpp"
#include "tensor/gemm.hpp"

// Kernel structure (see DESIGN.md §7): every hot op has a portable scalar
// kernel and an AVX2/FMA kernel selected once per process through
// core::simd_level(), and fans out over core::pool(). Determinism contract:
// chunk boundaries depend only on the element count (kElemGrain /
// kRedBlock / row grains), never on the thread count, and reductions
// combine per-chunk partials in chunk order on the caller — so results are
// bitwise identical at any BGL_THREADS.

namespace bgl::ops {
namespace {

/// Elements per parallel chunk for elementwise kernels.
constexpr std::int64_t kElemGrain = std::int64_t{1} << 15;
/// Fixed reduction block: per-block partials are combined in block order.
constexpr std::int64_t kRedBlock = std::int64_t{1} << 14;

void check_same(const Tensor& a, const Tensor& b, const char* what) {
  BGL_ENSURE(a.same_shape(b), what << ": shape mismatch "
                                   << shape_str(a.shape()) << " vs "
                                   << shape_str(b.shape()));
}

bool use_avx2() { return core::simd_level() == core::SimdLevel::kAvx2; }

/// --- scalar kernels (portable reference) -----------------------------------

void add_scalar(float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] += b[i];
}

void sub_scalar(float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] -= b[i];
}

void mul_scalar(float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] *= b[i];
}

void scale_scalar(float* a, float s, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] *= s;
}

void axpy_scalar(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void quant_f16_scalar(float* a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] = quantize(a[i], DType::kF16);
}

void quant_bf16_scalar(float* a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] = quantize(a[i], DType::kBF16);
}

double sum_block_scalar(const float* p, std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) acc += p[i];
  return acc;
}

float absmax_block_scalar(const float* p, std::int64_t n) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

bool nonfinite_block_scalar(const float* p, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i)
    if (!std::isfinite(p[i])) return true;
  return false;
}

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

float gelu_scalar(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float gelu_grad_scalar(float x) {
  const float x3 = x * x * x;
  const float inner = kGeluC * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}

void gelu_block_scalar(float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) x[i] = gelu_scalar(x[i]);
}

void gelu_bwd_block_scalar(float* dx, const float* x, const float* dy,
                           std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dx[i] = dy[i] * gelu_grad_scalar(x[i]);
}

void softmax_row_scalar(const float* in, float* o, std::int64_t cols) {
  float mx = in[0];
  for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
  for (std::int64_t c = 0; c < cols; ++c) o[c] = std::exp(in[c] - mx);
  double denom = 0.0;
  for (std::int64_t c = 0; c < cols; ++c) denom += o[c];
  const float inv = static_cast<float>(1.0 / denom);
  for (std::int64_t c = 0; c < cols; ++c) o[c] *= inv;
}

/// --- AVX2/FMA kernels ------------------------------------------------------

#ifdef BGL_OPS_AVX2

__attribute__((target("avx2,fma"))) void add_avx2(float* a, const float* b,
                                                  std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) a[i] += b[i];
}

__attribute__((target("avx2,fma"))) void sub_avx2(float* a, const float* b,
                                                  std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        a + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) a[i] -= b[i];
}

__attribute__((target("avx2,fma"))) void mul_avx2(float* a, const float* b,
                                                  std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) a[i] *= b[i];
}

__attribute__((target("avx2,fma"))) void scale_avx2(float* a, float s,
                                                    std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  for (; i < n; ++i) a[i] *= s;
}

// Deliberately mul+add, NOT fmadd: axpy backs scatter_add_rows, whose
// callers (MoE combine under permuted expert placements) accumulate the
// same terms in different orders and rely on two-term sums commuting.
// Rounding each product first keeps a+b == b+a exactly; a fused last
// product would break that under cancellation. axpy is memory-bound, so
// the extra rounding step costs nothing. GCC would contract mul+add
// intrinsic pairs into vfmadd inside this target("fma") function under
// the default -ffp-contract=fast, so this file builds with
// -ffp-contract=off (see tensor/CMakeLists.txt); the explicit SSE tail
// keeps the same shape as the vector body.
__attribute__((target("avx2,fma"))) void axpy_avx2(float* y, const float* x,
                                                   float alpha,
                                                   std::int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_mul_ps(va, _mm256_loadu_ps(x + i)),
                             _mm256_loadu_ps(y + i)));
  for (; i < n; ++i) {
    const __m128 p = _mm_mul_ss(_mm_set_ss(alpha), _mm_load_ss(x + i));
    _mm_store_ss(y + i, _mm_add_ss(p, _mm_load_ss(y + i)));
  }
}

/// f32 -> f16 -> f32 round trip via F16C, with NaN lanes fixed up to the
/// canonical quiet NaN the scalar converter produces (hardware would keep
/// the payload).
__attribute__((target("avx2,fma,f16c"))) void quant_f16_avx2(float* a,
                                                             std::int64_t n) {
  const __m256i sign_mask = _mm256_set1_epi32(
      static_cast<std::int32_t>(0x80000000u));
  const __m256i quiet = _mm256_set1_epi32(0x7FC00000);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    const __m256 rt = _mm256_cvtph_ps(
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    const __m256 nan_mask = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
    const __m256 canon = _mm256_castsi256_ps(_mm256_or_si256(
        _mm256_and_si256(_mm256_castps_si256(v), sign_mask), quiet));
    _mm256_storeu_ps(a + i, _mm256_blendv_ps(rt, canon, nan_mask));
  }
  for (; i < n; ++i) a[i] = quantize(a[i], DType::kF16);
}

/// Integer replica of detail::f32_to_bf16_bits (round-to-nearest-even with
/// the same NaN canonicalization), bitwise identical to the scalar path.
__attribute__((target("avx2,fma"))) void quant_bf16_avx2(float* a,
                                                         std::int64_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7FFFFFFF);
  const __m256i inf = _mm256_set1_epi32(0x7F800000);
  const __m256i bias = _mm256_set1_epi32(0x7FFF);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i hi_mask = _mm256_set1_epi32(
      static_cast<std::int32_t>(0xFFFF0000u));
  const __m256i quiet_bit = _mm256_set1_epi32(0x00400000);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i u = _mm256_castps_si256(_mm256_loadu_ps(a + i));
    const __m256i abs = _mm256_and_si256(u, abs_mask);
    const __m256i is_nan = _mm256_cmpgt_epi32(abs, inf);
    const __m256i lsb =
        _mm256_and_si256(_mm256_srli_epi32(u, 16), one);
    const __m256i rounded = _mm256_and_si256(
        _mm256_add_epi32(u, _mm256_add_epi32(bias, lsb)), hi_mask);
    const __m256i nan_val =
        _mm256_or_si256(_mm256_and_si256(u, hi_mask), quiet_bit);
    _mm256_storeu_ps(a + i, _mm256_castsi256_ps(_mm256_blendv_epi8(
                                rounded, nan_val, is_nan)));
  }
  for (; i < n; ++i) a[i] = quantize(a[i], DType::kBF16);
}

__attribute__((target("avx2,fma"))) double sum_block_avx2(const float* p,
                                                          std::int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(p + i);
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double total = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
  for (; i < n; ++i) total += p[i];
  return total;
}

__attribute__((target("avx2,fma"))) float absmax_block_avx2(const float* p,
                                                            std::int64_t n) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 vm = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    vm = _mm256_max_ps(vm, _mm256_and_ps(_mm256_loadu_ps(p + i), abs_mask));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vm);
  float m = 0.0f;
  for (float lane : lanes) m = std::max(m, lane);
  for (; i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

__attribute__((target("avx2,fma"))) bool nonfinite_block_avx2(
    const float* p, std::int64_t n) {
  const __m256i exp_mask = _mm256_set1_epi32(0x7F800000);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i u = _mm256_castps_si256(_mm256_loadu_ps(p + i));
    const __m256i exp = _mm256_and_si256(u, exp_mask);
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(exp, exp_mask)) != 0)
      return true;
  }
  for (; i < n; ++i)
    if (!std::isfinite(p[i])) return true;
  return false;
}

/// Vector expf: cephes-style range reduction + degree-5 polynomial,
/// ~1 ulp on the softmax/gelu input range, exp(0) == 1 exactly.
__attribute__((target("avx2,fma"))) inline __m256 exp256(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 lo = _mm256_set1_ps(-87.3365478515625f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 ln2_hi = _mm256_set1_ps(0.693359375f);
  const __m256 ln2_lo = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
  __m256 fx = _mm256_floor_ps(_mm256_fmadd_ps(x, log2e, half));
  x = _mm256_fnmadd_ps(fx, ln2_hi, x);
  x = _mm256_fnmadd_ps(fx, ln2_lo, x);

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, half);
  y = _mm256_fmadd_ps(y, _mm256_mul_ps(x, x), _mm256_add_ps(x, one));

  const __m256i pow2 = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvtps_epi32(fx), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

/// tanh(x) = 1 - 2/(exp(2x) + 1); exact 0 at x == 0, saturates to ±1.
__attribute__((target("avx2,fma"))) inline __m256 tanh256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 two = _mm256_set1_ps(2.0f);
  const __m256 e = exp256(_mm256_mul_ps(x, two));
  return _mm256_sub_ps(one,
                       _mm256_div_ps(two, _mm256_add_ps(e, one)));
}

__attribute__((target("avx2,fma"))) void gelu_block_avx2(float* x,
                                                         std::int64_t n) {
  const __m256 c = _mm256_set1_ps(kGeluC);
  const __m256 c3 = _mm256_set1_ps(0.044715f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 v3 = _mm256_mul_ps(_mm256_mul_ps(v, v), v);
    const __m256 inner = _mm256_mul_ps(c, _mm256_fmadd_ps(c3, v3, v));
    const __m256 t = tanh256(inner);
    _mm256_storeu_ps(
        x + i, _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_add_ps(one, t)));
  }
  for (; i < n; ++i) x[i] = gelu_scalar(x[i]);
}

__attribute__((target("avx2,fma"))) void gelu_bwd_block_avx2(
    float* dx, const float* x, const float* dy, std::int64_t n) {
  const __m256 c = _mm256_set1_ps(kGeluC);
  const __m256 c3 = _mm256_set1_ps(0.044715f);
  const __m256 c3x3 = _mm256_set1_ps(3.0f * 0.044715f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 v2 = _mm256_mul_ps(v, v);
    const __m256 v3 = _mm256_mul_ps(v2, v);
    const __m256 inner = _mm256_mul_ps(c, _mm256_fmadd_ps(c3, v3, v));
    const __m256 t = tanh256(inner);
    const __m256 sech2 = _mm256_fnmadd_ps(t, t, one);
    const __m256 lhs = _mm256_mul_ps(half, _mm256_add_ps(one, t));
    const __m256 rhs = _mm256_mul_ps(
        _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_mul_ps(sech2, c)),
        _mm256_fmadd_ps(c3x3, v2, one));
    _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(dy + i),
                                           _mm256_add_ps(lhs, rhs)));
  }
  for (; i < n; ++i) dx[i] = dy[i] * gelu_grad_scalar(x[i]);
}

__attribute__((target("avx2,fma"))) void softmax_row_avx2(const float* in,
                                                          float* o,
                                                          std::int64_t cols) {
  // Max (order-independent), vector body + scalar tail.
  float mx = in[0];
  std::int64_t j = 1;
  if (cols >= 9) {
    __m256 vm = _mm256_loadu_ps(in);
    for (j = 8; j + 8 <= cols; j += 8)
      vm = _mm256_max_ps(vm, _mm256_loadu_ps(in + j));
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vm);
    mx = lanes[0];
    for (int l = 1; l < 8; ++l) mx = std::max(mx, lanes[l]);
  }
  for (; j < cols; ++j) mx = std::max(mx, in[j]);

  const __m256 vmx = _mm256_set1_ps(mx);
  j = 0;
  for (; j + 8 <= cols; j += 8)
    _mm256_storeu_ps(o + j, exp256(_mm256_sub_ps(_mm256_loadu_ps(in + j),
                                                 vmx)));
  for (; j < cols; ++j) o[j] = std::exp(in[j] - mx);

  // Serial double accumulation in column order: deterministic and the
  // same combine the scalar kernel performs.
  double denom = 0.0;
  for (std::int64_t c = 0; c < cols; ++c) denom += o[c];
  const float inv = static_cast<float>(1.0 / denom);
  const __m256 vinv = _mm256_set1_ps(inv);
  j = 0;
  for (; j + 8 <= cols; j += 8)
    _mm256_storeu_ps(o + j, _mm256_mul_ps(_mm256_loadu_ps(o + j), vinv));
  for (; j < cols; ++j) o[j] *= inv;
}

#endif  // BGL_OPS_AVX2

/// --- dispatch + parallel drivers -------------------------------------------

using BinaryFn = void (*)(float*, const float*, std::int64_t);
using ScaleFn = void (*)(float*, float, std::int64_t);
using AxpyFn = void (*)(float*, const float*, float, std::int64_t);
using InplaceFn = void (*)(float*, std::int64_t);
using SumFn = double (*)(const float*, std::int64_t);
using AbsMaxFn = float (*)(const float*, std::int64_t);
using AnyFn = bool (*)(const float*, std::int64_t);
using GeluBwdFn = void (*)(float*, const float*, const float*, std::int64_t);
using SoftmaxRowFn = void (*)(const float*, float*, std::int64_t);

#ifdef BGL_OPS_AVX2
#define BGL_PICK(scalar, avx2) (use_avx2() ? (avx2) : (scalar))
#else
#define BGL_PICK(scalar, avx2) (scalar)
#endif

BinaryFn add_kernel() { static const BinaryFn f = BGL_PICK(add_scalar, add_avx2); return f; }
BinaryFn sub_kernel() { static const BinaryFn f = BGL_PICK(sub_scalar, sub_avx2); return f; }
BinaryFn mul_kernel() { static const BinaryFn f = BGL_PICK(mul_scalar, mul_avx2); return f; }
ScaleFn scale_kernel() { static const ScaleFn f = BGL_PICK(scale_scalar, scale_avx2); return f; }
AxpyFn axpy_kernel() { static const AxpyFn f = BGL_PICK(axpy_scalar, axpy_avx2); return f; }
InplaceFn quant_f16_kernel() { static const InplaceFn f = BGL_PICK(quant_f16_scalar, quant_f16_avx2); return f; }
InplaceFn quant_bf16_kernel() { static const InplaceFn f = BGL_PICK(quant_bf16_scalar, quant_bf16_avx2); return f; }
SumFn sum_kernel() { static const SumFn f = BGL_PICK(sum_block_scalar, sum_block_avx2); return f; }
AbsMaxFn absmax_kernel() { static const AbsMaxFn f = BGL_PICK(absmax_block_scalar, absmax_block_avx2); return f; }
AnyFn nonfinite_kernel() { static const AnyFn f = BGL_PICK(nonfinite_block_scalar, nonfinite_block_avx2); return f; }
InplaceFn gelu_kernel() { static const InplaceFn f = BGL_PICK(gelu_block_scalar, gelu_block_avx2); return f; }
GeluBwdFn gelu_bwd_kernel() { static const GeluBwdFn f = BGL_PICK(gelu_bwd_block_scalar, gelu_bwd_block_avx2); return f; }
SoftmaxRowFn softmax_row_kernel() { static const SoftmaxRowFn f = BGL_PICK(softmax_row_scalar, softmax_row_avx2); return f; }

#undef BGL_PICK

void binary_parallel(BinaryFn k, float* a, const float* b, std::int64_t n) {
  core::pool().parallel_for(n, kElemGrain, [&](std::int64_t b0,
                                               std::int64_t e0) {
    k(a + b0, b + b0, e0 - b0);
  });
}

/// Rows-per-chunk grain targeting ~kElemGrain elements; a function of the
/// row width only, never the thread count.
std::int64_t row_grain(std::int64_t cols) {
  return std::max<std::int64_t>(1, kElemGrain / std::max<std::int64_t>(
                                                    1, cols));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same(a, b, "add");
  Tensor out = a.clone();
  add_(out, b);
  return out;
}

void add_(Tensor& a, const Tensor& b) {
  check_same(a, b, "add_");
  binary_parallel(add_kernel(), a.f32().data(), b.f32().data(), a.numel());
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same(a, b, "sub");
  Tensor out = a.clone();
  binary_parallel(sub_kernel(), out.f32().data(), b.f32().data(), out.numel());
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same(a, b, "mul");
  Tensor out = a.clone();
  binary_parallel(mul_kernel(), out.f32().data(), b.f32().data(), out.numel());
  return out;
}

void scale_(Tensor& a, float s) {
  float* p = a.f32().data();
  core::pool().parallel_for(a.numel(), kElemGrain,
                            [&](std::int64_t b, std::int64_t e) {
                              scale_kernel()(p + b, s, e - b);
                            });
}

void axpy_(Tensor& y, float alpha, const Tensor& x) {
  check_same(y, x, "axpy_");
  float* py = y.f32().data();
  const float* px = x.f32().data();
  core::pool().parallel_for(y.numel(), kElemGrain,
                            [&](std::int64_t b, std::int64_t e) {
                              axpy_kernel()(py + b, px + b, alpha, e - b);
                            });
}

void zero_(Tensor& a) { a.fill(0.0f); }

void quantize_(Tensor& a, DType dtype) {
  if (dtype == DType::kF32) return;
  const InplaceFn k =
      dtype == DType::kF16 ? quant_f16_kernel() : quant_bf16_kernel();
  float* p = a.f32().data();
  core::pool().parallel_for(
      a.numel(), kElemGrain,
      [&](std::int64_t b, std::int64_t e) { k(p + b, e - b); });
}

double sum(const Tensor& a) {
  const float* p = a.f32().data();
  const std::int64_t n = a.numel();
  const std::int64_t nblocks = (n + kRedBlock - 1) / kRedBlock;
  if (nblocks <= 1) return sum_kernel()(p, n);
  std::vector<double> partial(static_cast<std::size_t>(nblocks));
  core::pool().parallel_for_chunks(
      n, kRedBlock, [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        partial[static_cast<std::size_t>(c)] = sum_kernel()(p + b, e - b);
      });
  double acc = 0.0;  // combine in block order: thread-count independent
  for (const double v : partial) acc += v;
  return acc;
}

double mean(const Tensor& a) {
  BGL_CHECK(a.numel() > 0);
  return sum(a) / static_cast<double>(a.numel());
}

float abs_max(const Tensor& a) {
  const float* p = a.f32().data();
  const std::int64_t n = a.numel();
  const std::int64_t nblocks = (n + kRedBlock - 1) / kRedBlock;
  if (nblocks <= 1) return absmax_kernel()(p, n);
  std::vector<float> partial(static_cast<std::size_t>(nblocks));
  core::pool().parallel_for_chunks(
      n, kRedBlock, [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        partial[static_cast<std::size_t>(c)] = absmax_kernel()(p + b, e - b);
      });
  float m = 0.0f;
  for (const float v : partial) m = std::max(m, v);
  return m;
}

bool has_nonfinite(const Tensor& a) {
  const float* p = a.f32().data();
  const std::int64_t n = a.numel();
  const std::int64_t nblocks = (n + kRedBlock - 1) / kRedBlock;
  if (nblocks <= 1) return nonfinite_kernel()(p, n);
  std::vector<unsigned char> partial(static_cast<std::size_t>(nblocks), 0);
  core::pool().parallel_for_chunks(
      n, kRedBlock, [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        partial[static_cast<std::size_t>(c)] =
            nonfinite_kernel()(p + b, e - b) ? 1 : 0;
      });
  for (const unsigned char v : partial)
    if (v != 0) return true;
  return false;
}

void col_sum(const Tensor& a, Tensor& out) {
  BGL_CHECK(a.ndim() == 2 && out.ndim() == 1);
  BGL_CHECK(out.dim(0) == a.dim(1));
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  auto pa = a.f32();
  auto po = out.f32();
  // Column-partitioned: each chunk owns its output columns outright, and
  // sums them in row order (deterministic at any thread count). Accumulate
  // in double: col_sum feeds bias gradients, where batch-split training
  // relies on the reduction being insensitive to how the rows are grouped
  // across data-parallel shards.
  core::pool().parallel_for(
      cols, 1024, [&](std::int64_t c0, std::int64_t c1) {
        std::vector<double> acc(static_cast<std::size_t>(c1 - c0), 0.0);
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* row = pa.data() + r * cols;
          for (std::int64_t c = c0; c < c1; ++c)
            acc[static_cast<std::size_t>(c - c0)] += row[c];
        }
        for (std::int64_t c = c0; c < c1; ++c)
          po[c] = static_cast<float>(acc[static_cast<std::size_t>(c - c0)]);
      });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  BGL_CHECK(a.ndim() == 2 && b.ndim() == 2);
  BGL_ENSURE(a.dim(1) == b.dim(0), "matmul " << shape_str(a.shape()) << " x "
                                             << shape_str(b.shape()));
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::zeros({m, n});
  detail::gemm(m, n, k, a.f32().data(), k, /*trans_a=*/false, b.f32().data(),
               n, /*trans_b=*/false, c.f32().data());
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  BGL_CHECK(a.ndim() == 2 && b.ndim() == 2);
  BGL_ENSURE(a.dim(0) == b.dim(0), "matmul_tn " << shape_str(a.shape())
                                                << " x " << shape_str(b.shape()));
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::zeros({m, n});
  detail::gemm(m, n, k, a.f32().data(), m, /*trans_a=*/true, b.f32().data(),
               n, /*trans_b=*/false, c.f32().data());
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  BGL_CHECK(a.ndim() == 2 && b.ndim() == 2);
  BGL_ENSURE(a.dim(1) == b.dim(1), "matmul_nt " << shape_str(a.shape())
                                                << " x " << shape_str(b.shape()));
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c = Tensor::zeros({m, n});
  detail::gemm(m, n, k, a.f32().data(), k, /*trans_a=*/false, b.f32().data(),
               k, /*trans_b=*/true, c.f32().data());
  return c;
}

Tensor transpose(const Tensor& a) {
  BGL_CHECK(a.ndim() == 2);
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out = Tensor::empty({n, m});
  auto pa = a.f32();
  auto po = out.f32();
  // Cache-blocked tiles: both the source rows and the destination rows of
  // a tile stay resident, instead of striding column-wise through the
  // whole destination. Row-block chunks are disjoint in the source and
  // write disjoint destination columns.
  constexpr std::int64_t kTile = 32;
  core::pool().parallel_for(
      (m + kTile - 1) / kTile, 4, [&](std::int64_t blk0, std::int64_t blk1) {
        for (std::int64_t blk = blk0; blk < blk1; ++blk) {
          const std::int64_t i0 = blk * kTile;
          const std::int64_t i1 = std::min(i0 + kTile, m);
          for (std::int64_t j0 = 0; j0 < n; j0 += kTile) {
            const std::int64_t j1 = std::min(j0 + kTile, n);
            for (std::int64_t i = i0; i < i1; ++i)
              for (std::int64_t j = j0; j < j1; ++j)
                po[j * m + i] = pa[i * n + j];
          }
        }
      });
  return out;
}

Tensor row_softmax(const Tensor& logits) {
  BGL_CHECK(logits.ndim() == 2);
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out = Tensor::empty({rows, cols});
  if (rows == 0 || cols == 0) return out;  // no rows, or 0-wide rows
  auto pin = logits.f32();
  auto pout = out.f32();
  const SoftmaxRowFn k = softmax_row_kernel();
  core::pool().parallel_for(
      rows, row_grain(cols), [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r)
          k(pin.data() + r * cols, pout.data() + r * cols, cols);
      });
  return out;
}

Tensor row_softmax_backward(const Tensor& y, const Tensor& dy) {
  BGL_CHECK(y.ndim() == 2);
  BGL_CHECK(y.same_shape(dy));
  const std::int64_t rows = y.dim(0), cols = y.dim(1);
  Tensor dx = Tensor::empty({rows, cols});
  auto py = y.f32();
  auto pdy = dy.f32();
  auto pdx = dx.f32();
  core::pool().parallel_for(
      rows, row_grain(cols), [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const float* yr = py.data() + r * cols;
          const float* dyr = pdy.data() + r * cols;
          float* dxr = pdx.data() + r * cols;
          double dot = 0.0;
          for (std::int64_t c = 0; c < cols; ++c) dot += double(yr[c]) * dyr[c];
          for (std::int64_t c = 0; c < cols; ++c)
            dxr[c] = yr[c] * (dyr[c] - static_cast<float>(dot));
        }
      });
  return dx;
}

Tensor gelu(const Tensor& x) {
  Tensor out = x.clone();
  float* p = out.f32().data();
  const InplaceFn k = gelu_kernel();
  core::pool().parallel_for(
      out.numel(), kElemGrain,
      [&](std::int64_t b, std::int64_t e) { k(p + b, e - b); });
  return out;
}

Tensor gelu_backward(const Tensor& x, const Tensor& dy) {
  check_same(x, dy, "gelu_backward");
  Tensor dx = Tensor::empty(x.shape());
  const float* px = x.f32().data();
  const float* pdy = dy.f32().data();
  float* pdx = dx.f32().data();
  const GeluBwdFn k = gelu_bwd_kernel();
  core::pool().parallel_for(x.numel(), kElemGrain,
                            [&](std::int64_t b, std::int64_t e) {
                              k(pdx + b, px + b, pdy + b, e - b);
                            });
  return dx;
}

Tensor relu(const Tensor& x) {
  Tensor out = x.clone();
  float* p = out.f32().data();
  core::pool().parallel_for(out.numel(), kElemGrain,
                            [&](std::int64_t b, std::int64_t e) {
                              for (std::int64_t i = b; i < e; ++i)
                                p[i] = std::max(p[i], 0.0f);
                            });
  return out;
}

Tensor relu_backward(const Tensor& x, const Tensor& dy) {
  check_same(x, dy, "relu_backward");
  Tensor dx = dy.clone();
  const float* px = x.f32().data();
  float* pdx = dx.f32().data();
  core::pool().parallel_for(x.numel(), kElemGrain,
                            [&](std::int64_t b, std::int64_t e) {
                              for (std::int64_t i = b; i < e; ++i)
                                if (px[i] <= 0.0f) pdx[i] = 0.0f;
                            });
  return dx;
}

Tensor copy_rows(const Tensor& src, std::int64_t r0, std::int64_t r1) {
  BGL_CHECK(src.ndim() == 2);
  BGL_ENSURE(r0 >= 0 && r0 <= r1 && r1 <= src.dim(0),
             "copy_rows [" << r0 << "," << r1 << ") of " << src.dim(0));
  const std::int64_t cols = src.dim(1);
  Tensor out = Tensor::empty({std::max<std::int64_t>(r1 - r0, 0), cols});
  if (r1 > r0) {
    auto ps = src.f32();
    std::copy(ps.begin() + r0 * cols, ps.begin() + r1 * cols,
              out.f32().begin());
  }
  return out;
}

Tensor gather_rows(const Tensor& src, std::span<const std::int32_t> rows) {
  BGL_CHECK(src.ndim() == 2);
  const std::int64_t cols = src.dim(1);
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  Tensor out = Tensor::empty({n, cols});
  auto ps = src.f32();
  auto po = out.f32();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t r = rows[static_cast<std::size_t>(i)];
    BGL_ENSURE(r >= 0 && r < src.dim(0), "gather_rows row " << r);
    std::copy(ps.begin() + r * cols, ps.begin() + (r + 1) * cols,
              po.begin() + i * cols);
  }
  return out;
}

void set_rows(Tensor& dst, std::int64_t r0, const Tensor& src) {
  BGL_CHECK(dst.ndim() == 2 && src.ndim() == 2);
  BGL_CHECK(dst.dim(1) == src.dim(1));
  BGL_ENSURE(r0 >= 0 && r0 + src.dim(0) <= dst.dim(0),
             "set_rows at " << r0 << " size " << src.dim(0));
  const std::int64_t cols = dst.dim(1);
  auto ps = src.f32();
  auto pd = dst.f32();
  std::copy(ps.begin(), ps.end(), pd.begin() + r0 * cols);
}

void scatter_add_rows(Tensor& dst, std::span<const std::int32_t> rows,
                      const Tensor& src, std::span<const float> alpha) {
  BGL_CHECK(dst.ndim() == 2 && src.ndim() == 2);
  BGL_CHECK(dst.dim(1) == src.dim(1));
  BGL_CHECK(static_cast<std::int64_t>(rows.size()) == src.dim(0));
  BGL_CHECK(alpha.empty() || alpha.size() == rows.size());
  const std::int64_t cols = dst.dim(1);
  auto ps = src.f32();
  auto pd = dst.f32();
  // Deliberately serial: `rows` may repeat, so the source-row order is the
  // reduction order. Concurrent callers (MoELayer) keep per-task partial
  // outputs and funnel them through this op in a fixed order instead.
  const AxpyFn k = axpy_kernel();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::int32_t r = rows[i];
    BGL_ENSURE(r >= 0 && r < dst.dim(0), "scatter_add row " << r);
    const float a = alpha.empty() ? 1.0f : alpha[i];
    k(pd.data() + r * cols, ps.data() + static_cast<std::int64_t>(i) * cols,
      a, cols);
  }
}

}  // namespace bgl::ops
