#include "tensor/tensor.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace bgl {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = shape.empty() ? 0 : 1;
  for (const auto d : shape) {
    // Zero-sized dims are allowed (e.g. an expert that received no tokens);
    // negative dims are always a bug.
    BGL_ENSURE(d >= 0, "negative dim in shape " << shape_str(shape));
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape, DType dtype, std::shared_ptr<std::byte[]> buf)
    : buf_(std::move(buf)),
      shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      dtype_(dtype) {}

Tensor Tensor::empty(Shape shape, DType dtype) {
  const std::int64_t n = shape_numel(shape);
  auto buf = std::shared_ptr<std::byte[]>(
      new std::byte[static_cast<std::size_t>(n) * dtype_size(dtype)]);
  return Tensor(std::move(shape), dtype, std::move(buf));
}

Tensor Tensor::zeros(Shape shape, DType dtype) {
  Tensor t = empty(std::move(shape), dtype);
  std::memset(t.buf_.get(), 0, t.nbytes());
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = empty(std::move(shape), DType::kF32);
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t = empty(std::move(shape), DType::kF32);
  for (float& v : t.f32())
    v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = empty(std::move(shape), DType::kF32);
  for (float& v : t.f32()) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values, Shape shape) {
  Tensor t = empty(std::move(shape), DType::kF32);
  BGL_ENSURE(static_cast<std::int64_t>(values.size()) == t.numel(),
             "value count " << values.size() << " != numel " << t.numel());
  std::copy(values.begin(), values.end(), t.f32().begin());
  return t;
}

std::span<float> Tensor::f32() {
  BGL_ENSURE(dtype_ == DType::kF32, "f32() on " << dtype_name(dtype_));
  return {reinterpret_cast<float*>(buf_.get()),
          static_cast<std::size_t>(numel_)};
}

std::span<const float> Tensor::f32() const {
  BGL_ENSURE(dtype_ == DType::kF32, "f32() on " << dtype_name(dtype_));
  return {reinterpret_cast<const float*>(buf_.get()),
          static_cast<std::size_t>(numel_)};
}

std::span<std::byte> Tensor::raw() { return {buf_.get(), nbytes()}; }

std::span<const std::byte> Tensor::raw() const { return {buf_.get(), nbytes()}; }

float& Tensor::at(std::int64_t r, std::int64_t c) {
  BGL_CHECK(ndim() == 2 && dtype_ == DType::kF32);
  BGL_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
  return reinterpret_cast<float*>(buf_.get())[r * shape_[1] + c];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  BGL_CHECK(ndim() == 2 && dtype_ == DType::kF32);
  BGL_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
  return reinterpret_cast<const float*>(buf_.get())[r * shape_[1] + c];
}

Tensor Tensor::clone() const {
  if (!defined()) return {};
  Tensor t = empty(shape_, dtype_);
  std::memcpy(t.buf_.get(), buf_.get(), nbytes());
  return t;
}

Tensor Tensor::reshape(Shape shape) const {
  BGL_ENSURE(shape_numel(shape) == numel_,
             "reshape " << shape_str(shape_) << " -> " << shape_str(shape));
  return Tensor(std::move(shape), dtype_, buf_);
}

Tensor Tensor::cast(DType dtype) const {
  if (dtype == dtype_) return clone();
  Tensor out = empty(shape_, dtype);
  const std::size_t n = static_cast<std::size_t>(numel_);

  auto load = [&](std::size_t i) -> float {
    switch (dtype_) {
      case DType::kF32:
        return reinterpret_cast<const float*>(buf_.get())[i];
      case DType::kF16:
        return detail::f16_bits_to_f32(
            reinterpret_cast<const std::uint16_t*>(buf_.get())[i]);
      case DType::kBF16:
        return detail::bf16_bits_to_f32(
            reinterpret_cast<const std::uint16_t*>(buf_.get())[i]);
    }
    return 0.0f;
  };
  auto store = [&](std::size_t i, float v) {
    switch (dtype) {
      case DType::kF32:
        reinterpret_cast<float*>(out.buf_.get())[i] = v;
        break;
      case DType::kF16:
        reinterpret_cast<std::uint16_t*>(out.buf_.get())[i] =
            detail::f32_to_f16_bits(v);
        break;
      case DType::kBF16:
        reinterpret_cast<std::uint16_t*>(out.buf_.get())[i] =
            detail::f32_to_bf16_bits(v);
        break;
    }
  };
  for (std::size_t i = 0; i < n; ++i) store(i, load(i));
  return out;
}

void Tensor::fill(float value) {
  const std::size_t n = static_cast<std::size_t>(numel_);
  switch (dtype_) {
    case DType::kF32: {
      auto* p = reinterpret_cast<float*>(buf_.get());
      std::fill(p, p + n, value);
      break;
    }
    case DType::kF16: {
      auto* p = reinterpret_cast<std::uint16_t*>(buf_.get());
      std::fill(p, p + n, detail::f32_to_f16_bits(value));
      break;
    }
    case DType::kBF16: {
      auto* p = reinterpret_cast<std::uint16_t*>(buf_.get());
      std::fill(p, p + n, detail::f32_to_bf16_bits(value));
      break;
    }
  }
}

}  // namespace bgl
