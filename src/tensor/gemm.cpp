#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BGL_GEMM_AVX2 1
#include <immintrin.h>
#endif

#include "core/cpu.hpp"
#include "core/thread_pool.hpp"

namespace bgl::ops::detail {
namespace {

// Register tile: MR rows of A x NR columns of B (two 8-lane vectors).
constexpr std::int64_t kMR = 6;
constexpr std::int64_t kNR = 16;
// Cache blocking: kc-deep panels (B panel ~16 KiB -> L1, A block ~168 KiB
// -> L2); MC is the parallel row-block unit and a multiple of MR.
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kMC = 168;
// Below this many flops the packing/pool overhead dominates; run the row
// blocks inline on the caller.
constexpr std::int64_t kParallelFlops = std::int64_t{1} << 20;

/// Computes a kc-deep MRxNR tile: C[0..mr, 0..nr] += Ap·Bp. Ap is packed
/// p-major with MR row entries per step (zero padded), Bp p-major with NR
/// column entries per step (zero padded).
using MicroKernel = void (*)(std::int64_t kc, const float* ap, const float* bp,
                             float* c, std::int64_t ldc, std::int64_t mr,
                             std::int64_t nr);

void micro_scalar(std::int64_t kc, const float* ap, const float* bp, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  float acc[kMR][kNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kMR;
    const float* b = bp + p * kNR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float av = a[r];
      for (std::int64_t j = 0; j < kNR; ++j) acc[r][j] += av * b[j];
    }
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (std::int64_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
  }
}

#ifdef BGL_GEMM_AVX2

__attribute__((target("avx2,fma"))) void micro_avx2(
    std::int64_t kc, const float* ap, const float* bp, float* c,
    std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
  __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
  __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
  __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
  __m256 a40 = _mm256_setzero_ps(), a41 = _mm256_setzero_ps();
  __m256 a50 = _mm256_setzero_ps(), a51 = _mm256_setzero_ps();
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kMR;
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNR + 8);
    __m256 av;
    av = _mm256_broadcast_ss(a + 0);
    a00 = _mm256_fmadd_ps(av, b0, a00);
    a01 = _mm256_fmadd_ps(av, b1, a01);
    av = _mm256_broadcast_ss(a + 1);
    a10 = _mm256_fmadd_ps(av, b0, a10);
    a11 = _mm256_fmadd_ps(av, b1, a11);
    av = _mm256_broadcast_ss(a + 2);
    a20 = _mm256_fmadd_ps(av, b0, a20);
    a21 = _mm256_fmadd_ps(av, b1, a21);
    av = _mm256_broadcast_ss(a + 3);
    a30 = _mm256_fmadd_ps(av, b0, a30);
    a31 = _mm256_fmadd_ps(av, b1, a31);
    av = _mm256_broadcast_ss(a + 4);
    a40 = _mm256_fmadd_ps(av, b0, a40);
    a41 = _mm256_fmadd_ps(av, b1, a41);
    av = _mm256_broadcast_ss(a + 5);
    a50 = _mm256_fmadd_ps(av, b0, a50);
    a51 = _mm256_fmadd_ps(av, b1, a51);
  }
  if (mr == kMR && nr == kNR) {
    float* crow = c;
    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), a00));
    _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), a01));
    crow += ldc;
    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), a10));
    _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), a11));
    crow += ldc;
    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), a20));
    _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), a21));
    crow += ldc;
    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), a30));
    _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), a31));
    crow += ldc;
    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), a40));
    _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), a41));
    crow += ldc;
    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), a50));
    _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), a51));
  } else {
    alignas(32) float tmp[kMR * kNR];
    _mm256_store_ps(tmp + 0 * kNR, a00);
    _mm256_store_ps(tmp + 0 * kNR + 8, a01);
    _mm256_store_ps(tmp + 1 * kNR, a10);
    _mm256_store_ps(tmp + 1 * kNR + 8, a11);
    _mm256_store_ps(tmp + 2 * kNR, a20);
    _mm256_store_ps(tmp + 2 * kNR + 8, a21);
    _mm256_store_ps(tmp + 3 * kNR, a30);
    _mm256_store_ps(tmp + 3 * kNR + 8, a31);
    _mm256_store_ps(tmp + 4 * kNR, a40);
    _mm256_store_ps(tmp + 4 * kNR + 8, a41);
    _mm256_store_ps(tmp + 5 * kNR, a50);
    _mm256_store_ps(tmp + 5 * kNR + 8, a51);
    for (std::int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += tmp[r * kNR + j];
    }
  }
}

#endif  // BGL_GEMM_AVX2

MicroKernel pick_kernel() {
#ifdef BGL_GEMM_AVX2
  if (core::simd_level() == core::SimdLevel::kAvx2) return micro_avx2;
#endif
  return micro_scalar;
}

/// Packs B panel jp (columns [jp*NR, jp*NR + nr), k rows [p0, p0+kc)) into
/// p-major NR-wide steps, zero padded past nr.
void pack_b_panel(const float* b, std::int64_t ldb, bool trans,
                  std::int64_t p0, std::int64_t kc, std::int64_t j0,
                  std::int64_t nr, float* bp) {
  if (!trans) {
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* src = b + (p0 + p) * ldb + j0;
      float* dst = bp + p * kNR;
      for (std::int64_t j = 0; j < nr; ++j) dst[j] = src[j];
      for (std::int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
    }
  } else {
    // B element (p, j) lives at b[j*ldb + p]: gather column-strided.
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* src = b + j0 * ldb + (p0 + p);
      float* dst = bp + p * kNR;
      for (std::int64_t j = 0; j < nr; ++j) dst[j] = src[j * ldb];
      for (std::int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
    }
  }
}

/// Packs rows [i0, i0+mc) x k [p0, p0+kc) of A into MR-tall micro-panels,
/// each p-major with MR row entries per step, zero padded past the edge.
void pack_a_block(const float* a, std::int64_t lda, bool trans,
                  std::int64_t i0, std::int64_t mc, std::int64_t p0,
                  std::int64_t kc, float* ap) {
  const std::int64_t panels = (mc + kMR - 1) / kMR;
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    const std::int64_t r0 = i0 + ip * kMR;
    const std::int64_t mr = std::min<std::int64_t>(kMR, i0 + mc - r0);
    float* dst = ap + ip * kc * kMR;
    if (!trans) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + r0 * lda + (p0 + p);
        float* d = dst + p * kMR;
        for (std::int64_t r = 0; r < mr; ++r) d[r] = src[r * lda];
        for (std::int64_t r = mr; r < kMR; ++r) d[r] = 0.0f;
      }
    } else {
      // A element (i, p) lives at a[p*lda + i]: storage row p is
      // contiguous in i.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + (p0 + p) * lda + r0;
        float* d = dst + p * kMR;
        for (std::int64_t r = 0; r < mr; ++r) d[r] = src[r];
        for (std::int64_t r = mr; r < kMR; ++r) d[r] = 0.0f;
      }
    }
  }
}

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          std::int64_t lda, bool trans_a, const float* b, std::int64_t ldb,
          bool trans_b, float* c) {
  if (m == 0 || n == 0 || k == 0) return;
  static const MicroKernel micro = pick_kernel();

  const std::int64_t bpanels = (n + kNR - 1) / kNR;
  const std::int64_t row_blocks = (m + kMC - 1) / kMC;
  // Row blocks run in parallel; small problems stay on the caller (one
  // chunk). Either way the chunk decomposition never changes results:
  // every C row is produced by exactly one block with a fixed k order.
  const std::int64_t grain = 2 * m * n * k < kParallelFlops ? row_blocks : 1;

  std::vector<float> bp(static_cast<std::size_t>(bpanels * kKC * kNR));
  for (std::int64_t p0 = 0; p0 < k; p0 += kKC) {
    const std::int64_t kc = std::min(kKC, k - p0);
    for (std::int64_t jp = 0; jp < bpanels; ++jp) {
      const std::int64_t j0 = jp * kNR;
      pack_b_panel(b, ldb, trans_b, p0, kc, j0,
                   std::min(kNR, n - j0), bp.data() + jp * kc * kNR);
    }
    core::pool().parallel_for(
        row_blocks, grain, [&](std::int64_t blk0, std::int64_t blk1) {
          thread_local std::vector<float> ap;
          for (std::int64_t blk = blk0; blk < blk1; ++blk) {
            const std::int64_t i0 = blk * kMC;
            const std::int64_t mc = std::min(kMC, m - i0);
            const std::int64_t apanels = (mc + kMR - 1) / kMR;
            ap.resize(static_cast<std::size_t>(apanels * kc * kMR));
            pack_a_block(a, lda, trans_a, i0, mc, p0, kc, ap.data());
            for (std::int64_t jp = 0; jp < bpanels; ++jp) {
              const std::int64_t j0 = jp * kNR;
              const std::int64_t nr = std::min(kNR, n - j0);
              const float* bpanel = bp.data() + jp * kc * kNR;
              for (std::int64_t ip = 0; ip < apanels; ++ip) {
                const std::int64_t r0 = i0 + ip * kMR;
                micro(kc, ap.data() + ip * kc * kMR, bpanel, c + r0 * n + j0,
                      n, std::min<std::int64_t>(kMR, i0 + mc - r0), nr);
              }
            }
          }
        });
  }
}

}  // namespace bgl::ops::detail
