#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/error.hpp"

namespace bgl::quant {

void pack16(std::span<const float> x, DType dtype,
            std::span<std::uint16_t> out) {
  BGL_CHECK(out.size() == x.size());
  if (dtype == DType::kBF16) {
    for (std::size_t i = 0; i < x.size(); ++i)
      out[i] = detail::f32_to_bf16_bits(x[i]);
  } else {
    BGL_ENSURE(dtype == DType::kF16, "pack16 wire must be bf16 or f16");
    for (std::size_t i = 0; i < x.size(); ++i)
      out[i] = detail::f32_to_f16_bits(x[i]);
  }
}

void unpack16(std::span<const std::uint16_t> x, DType dtype,
              std::span<float> out) {
  BGL_CHECK(out.size() == x.size());
  if (dtype == DType::kBF16) {
    for (std::size_t i = 0; i < x.size(); ++i)
      out[i] = detail::bf16_bits_to_f32(x[i]);
  } else {
    BGL_ENSURE(dtype == DType::kF16, "unpack16 wire must be bf16 or f16");
    for (std::size_t i = 0; i < x.size(); ++i)
      out[i] = detail::f16_bits_to_f32(x[i]);
  }
}

std::vector<std::uint16_t> pack16(std::span<const float> x, DType dtype) {
  std::vector<std::uint16_t> out(x.size());
  pack16(x, dtype, out);
  return out;
}

std::vector<float> unpack16(std::span<const std::uint16_t> x, DType dtype) {
  std::vector<float> out(x.size());
  unpack16(x, dtype, out);
  return out;
}

namespace {

/// Quantizes one element given the block scale. NaN encodes to 0; values
/// beyond the block max (impossible for finite blocks, possible when an inf
/// polluted the scale) clamp to ±127.
std::int8_t quantize_one(float v, float scale) {
  const float r = std::nearbyintf(v / scale);
  if (r >= 127.0f) return 127;
  if (r <= -127.0f) return -127;
  if (!(r == r)) return 0;  // NaN
  return static_cast<std::int8_t>(r);
}

/// Block scale: max |x| / 127, ignoring NaN (comparisons are false).
float block_scale(const float* x, std::size_t n) {
  float max_abs = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > max_abs) max_abs = a;
  }
  return max_abs / 127.0f;
}

}  // namespace

std::size_t int8_encoded_bytes(std::size_t n) {
  const std::size_t blocks = (n + kInt8Block - 1) / kInt8Block;
  return 8 + 4 * blocks + n;
}

std::vector<std::byte> encode_int8(std::span<const float> x) {
  const std::size_t n = x.size();
  const std::size_t blocks = (n + kInt8Block - 1) / kInt8Block;
  std::vector<std::byte> out(int8_encoded_bytes(n));
  const std::uint64_t count = n;
  std::memcpy(out.data(), &count, 8);
  std::byte* scales = out.data() + 8;
  std::byte* payload = scales + 4 * blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kInt8Block;
    const std::size_t len = std::min(kInt8Block, n - lo);
    const float scale = block_scale(x.data() + lo, len);
    std::memcpy(scales + 4 * b, &scale, 4);
    if (scale == 0.0f) {
      std::memset(payload + lo, 0, len);
      continue;
    }
    for (std::size_t i = 0; i < len; ++i) {
      const std::int8_t q = quantize_one(x[lo + i], scale);
      std::memcpy(payload + lo + i, &q, 1);
    }
  }
  return out;
}

std::vector<float> decode_int8(std::span<const std::byte> buf) {
  BGL_ENSURE(buf.size() >= 8, "int8 buffer truncated: " << buf.size() << " B");
  std::uint64_t count = 0;
  std::memcpy(&count, buf.data(), 8);
  const std::size_t n = static_cast<std::size_t>(count);
  BGL_ENSURE(buf.size() == int8_encoded_bytes(n),
             "int8 buffer of " << buf.size() << " B cannot hold " << n
                               << " elements");
  const std::size_t blocks = (n + kInt8Block - 1) / kInt8Block;
  const std::byte* scales = buf.data() + 8;
  const std::byte* payload = scales + 4 * blocks;
  std::vector<float> out(n);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kInt8Block;
    const std::size_t len = std::min(kInt8Block, n - lo);
    float scale = 0.0f;
    std::memcpy(&scale, scales + 4 * b, 4);
    for (std::size_t i = 0; i < len; ++i) {
      std::int8_t q = 0;
      std::memcpy(&q, payload + lo + i, 1);
      out[lo + i] = scale * static_cast<float>(q);
    }
  }
  return out;
}

std::vector<float> int8_roundtrip(std::span<const float> x) {
  const std::size_t n = x.size();
  std::vector<float> out(n);
  const std::size_t blocks = (n + kInt8Block - 1) / kInt8Block;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kInt8Block;
    const std::size_t len = std::min(kInt8Block, n - lo);
    const float scale = block_scale(x.data() + lo, len);
    for (std::size_t i = 0; i < len; ++i) {
      out[lo + i] =
          scale == 0.0f
              ? 0.0f
              : scale * static_cast<float>(quantize_one(x[lo + i], scale));
    }
  }
  return out;
}

}  // namespace bgl::quant
