// Dense f32 kernels: elementwise ops, reductions, GEMM, softmax, layernorm.
//
// Naming: a trailing underscore means in-place mutation of the first
// argument (ops::add_(a, b) does a += b), mirroring common tensor-library
// convention. All kernels require f32 storage and assert shapes.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace bgl::ops {

/// --- elementwise ----------------------------------------------------------

/// Returns a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);

/// a += b.
void add_(Tensor& a, const Tensor& b);

/// Returns a - b.
Tensor sub(const Tensor& a, const Tensor& b);

/// Returns a ⊙ b (Hadamard product).
Tensor mul(const Tensor& a, const Tensor& b);

/// a *= s.
void scale_(Tensor& a, float s);

/// y += alpha * x.
void axpy_(Tensor& y, float alpha, const Tensor& x);

/// Sets every element to zero.
void zero_(Tensor& a);

/// Rounds every element through `dtype` storage and back, in place.
/// This is the low-precision *compute* emulation primitive.
void quantize_(Tensor& a, DType dtype);

/// --- reductions -----------------------------------------------------------

/// Sum of all elements (accumulated in double).
double sum(const Tensor& a);

/// Mean of all elements.
double mean(const Tensor& a);

/// Maximum |x| over all elements (0 for empty).
float abs_max(const Tensor& a);

/// True if any element is NaN or ±inf.
bool has_nonfinite(const Tensor& a);

/// Per-column sums of a rank-2 tensor: out[j] = Σ_i a[i,j]. Used for bias
/// gradients. out must be rank-1 of length a.dim(1).
void col_sum(const Tensor& a, Tensor& out);

/// --- linear algebra -------------------------------------------------------

/// C = A·B for A:[m,k], B:[k,n]. Blocked i-k-j loop, f32 accumulate.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ·B for A:[k,m], B:[k,n] (gradient w.r.t. weights).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A·Bᵀ for A:[m,k], B:[n,k] (gradient w.r.t. inputs).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Rank-2 transpose copy.
Tensor transpose(const Tensor& a);

/// --- neural-net primitives --------------------------------------------------

/// Row-wise softmax of a rank-2 tensor (numerically stabilized).
Tensor row_softmax(const Tensor& logits);

/// Given y = row_softmax(x) and dL/dy, returns dL/dx.
Tensor row_softmax_backward(const Tensor& y, const Tensor& dy);

/// tanh-approximation GELU, elementwise.
Tensor gelu(const Tensor& x);

/// dL/dx for y = gelu(x) given x and dL/dy.
Tensor gelu_backward(const Tensor& x, const Tensor& dy);

/// ReLU, elementwise.
Tensor relu(const Tensor& x);

/// dL/dx for y = relu(x).
Tensor relu_backward(const Tensor& x, const Tensor& dy);

/// --- row gather/scatter (dispatch primitives) -------------------------------

/// Copies rows [r0, r1) of a rank-2 tensor into a new tensor.
Tensor copy_rows(const Tensor& src, std::int64_t r0, std::int64_t r1);

/// Gathers the listed rows of a rank-2 tensor (duplicates allowed).
Tensor gather_rows(const Tensor& src, std::span<const std::int32_t> rows);

/// dst.rows(r0...) = src; src row count determines the range.
void set_rows(Tensor& dst, std::int64_t r0, const Tensor& src);

/// dst[rows[i]] += alpha[i] * src[i] for each row i of src (scatter-add).
/// `alpha` may be empty for unit scaling.
void scatter_add_rows(Tensor& dst, std::span<const std::int32_t> rows,
                      const Tensor& src, std::span<const float> alpha = {});

}  // namespace bgl::ops
