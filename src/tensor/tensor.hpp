// Tensor: a contiguous, shape-annotated, reference-counted buffer.
//
// Design notes
//  * Views (reshape) share the underlying buffer, torch-style; `clone()`
//    makes deep copies explicit.
//  * Compute kernels operate on f32. The 16-bit formats (f16/bf16) are
//    storage formats: `cast()` converts storage, and ops::quantize_()
//    round-trips values in place to emulate low-precision compute, which is
//    exactly what mixed-precision training needs to reproduce (see
//    bgl::train::LossScaler).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "tensor/dtype.hpp"

namespace bgl {

/// Tensor shape; dims are positive. Rank 0 is an empty tensor.
using Shape = std::vector<std::int64_t>;

/// Number of elements of a shape (1 for rank-0 by convention of empty()).
std::int64_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" for diagnostics.
std::string shape_str(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor (numel() == 0, no buffer).
  Tensor() = default;

  /// Uninitialized tensor of the given shape/dtype (values unspecified).
  static Tensor empty(Shape shape, DType dtype = DType::kF32);

  /// Zero-filled tensor.
  static Tensor zeros(Shape shape, DType dtype = DType::kF32);

  /// Constant-filled f32 tensor.
  static Tensor full(Shape shape, float value);

  /// f32 tensor with i.i.d. N(mean, stddev^2) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);

  /// f32 tensor with i.i.d. U[lo, hi) entries.
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);

  /// f32 tensor from a flat list, reshaped to `shape`.
  static Tensor from(std::initializer_list<float> values, Shape shape);

  /// --- shape & type -------------------------------------------------------

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return numel_; }
  [[nodiscard]] std::size_t ndim() const { return shape_.size(); }
  [[nodiscard]] std::int64_t dim(std::size_t i) const {
    BGL_CHECK(i < shape_.size());
    return shape_[i];
  }
  [[nodiscard]] DType dtype() const { return dtype_; }
  [[nodiscard]] bool defined() const { return static_cast<bool>(buf_); }
  [[nodiscard]] std::size_t nbytes() const {
    return static_cast<std::size_t>(numel_) * dtype_size(dtype_);
  }

  /// --- data access --------------------------------------------------------

  /// Typed span over f32 storage. Requires dtype() == kF32.
  [[nodiscard]] std::span<float> f32();
  [[nodiscard]] std::span<const float> f32() const;

  /// Raw byte view of the storage.
  [[nodiscard]] std::span<std::byte> raw();
  [[nodiscard]] std::span<const std::byte> raw() const;

  /// Element accessors for rank-2 f32 tensors (row, col).
  [[nodiscard]] float& at(std::int64_t r, std::int64_t c);
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const;

  /// --- transforms ---------------------------------------------------------

  /// Deep copy.
  [[nodiscard]] Tensor clone() const;

  /// New view sharing this buffer; numel must match.
  [[nodiscard]] Tensor reshape(Shape shape) const;

  /// Storage conversion (f32 <-> f16/bf16) with round-to-nearest-even.
  /// Returns a new tensor; casting to the current dtype clones.
  [[nodiscard]] Tensor cast(DType dtype) const;

  /// Fills every element with `value` (any dtype; value is quantized).
  void fill(float value);

  /// True if shapes are identical.
  [[nodiscard]] bool same_shape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

 private:
  Tensor(Shape shape, DType dtype, std::shared_ptr<std::byte[]> buf);

  std::shared_ptr<std::byte[]> buf_;
  Shape shape_;
  std::int64_t numel_ = 0;
  DType dtype_ = DType::kF32;
};

}  // namespace bgl
