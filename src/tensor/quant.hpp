// Wire codecs for compressed communication (DESIGN.md §11).
//
// Two encodings, chosen per communication path:
//
//  * 16-bit truncation (bf16 / f16): the gradient-allreduce wire format.
//    pack16/unpack16 round each f32 through the storage format of
//    tensor/dtype.hpp — the identical round-to-nearest-even conversion the
//    mixed-precision compute emulation uses — so wire numerics and compute
//    numerics agree. f16 overflows to ±inf exactly like the compute path,
//    which is what lets the loss scaler detect and back off from a wire
//    overflow the same way it handles a compute overflow.
//
//  * int8 + per-block f32 scale: the MoE token-dispatch wire format.
//    Elements are grouped in blocks of kInt8Block; each block stores one
//    f32 scale (max |x| / 127) and one int8 per element, rounded to
//    nearest-even. decode(encode(x)) is a *pure function of x*: block
//    boundaries start at offset 0 of the logical buffer, the scale is
//    derived only from the block's own elements, and every arithmetic step
//    is deterministic IEEE f32 — so the decoded values are bitwise
//    identical no matter which collective algorithm, rank count, or world
//    layout carried the bytes. Inputs are assumed finite (token
//    activations / their gradients); non-finite elements encode to 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/dtype.hpp"

namespace bgl::quant {

/// Elements sharing one f32 scale in the int8 block codec.
inline constexpr std::size_t kInt8Block = 32;

/// --- 16-bit wire (gradient allreduce) --------------------------------------

/// Rounds each element of `x` through `dtype` (kBF16 or kF16) into 16-bit
/// storage. out.size() must equal x.size().
void pack16(std::span<const float> x, DType dtype,
            std::span<std::uint16_t> out);

/// Exact expansion of 16-bit storage back to f32. out.size() == x.size().
void unpack16(std::span<const std::uint16_t> x, DType dtype,
              std::span<float> out);

[[nodiscard]] std::vector<std::uint16_t> pack16(std::span<const float> x,
                                                DType dtype);
[[nodiscard]] std::vector<float> unpack16(std::span<const std::uint16_t> x,
                                          DType dtype);

/// --- int8 block-scaled wire (MoE dispatch) ---------------------------------

/// Encoded size in bytes of an n-element buffer:
///   8 (u64 count) + 4 * ceil(n / kInt8Block) (scales) + n (payload).
[[nodiscard]] std::size_t int8_encoded_bytes(std::size_t n);

/// Encodes `x` into the self-describing byte layout documented above.
[[nodiscard]] std::vector<std::byte> encode_int8(std::span<const float> x);

/// Decodes a buffer produced by encode_int8. Throws on malformed input.
[[nodiscard]] std::vector<float> decode_int8(std::span<const std::byte> buf);

/// decode_int8(encode_int8(x)) without the byte round trip — the oracle the
/// conformance suite pins compressed dispatch against. The per-element
/// error is bounded by scale/2 = max_block |x| / 254.
[[nodiscard]] std::vector<float> int8_roundtrip(std::span<const float> x);

}  // namespace bgl::quant
