// Numeric data types used by the tensor library.
//
// The New Generation Sunway hardware BaGuaLu targets provides FP16 and BF16
// arithmetic on the CPE clusters. On commodity hosts we reproduce the
// *numerics* of those formats in software: Half and BFloat16 are 16-bit
// storage types with exact IEEE-style conversion to/from float, including
// round-to-nearest-even, so precision experiments (loss scaling, master
// weights) behave like the real thing.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace bgl {

/// Element type of a Tensor.
enum class DType : std::uint8_t { kF32 = 0, kF16 = 1, kBF16 = 2 };

/// Size in bytes of one element.
constexpr std::size_t dtype_size(DType dtype) {
  return dtype == DType::kF32 ? 4 : 2;
}

/// Short display name ("f32", "f16", "bf16").
const char* dtype_name(DType dtype);

namespace detail {

inline std::uint32_t bits_of(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, 4);
  return u;
}

inline float float_of(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, 4);
  return f;
}

/// float -> IEEE binary16 bits, round-to-nearest-even, with proper
/// handling of overflow (-> inf), subnormals and NaN.
std::uint16_t f32_to_f16_bits(float f);

/// IEEE binary16 bits -> float (exact).
float f16_bits_to_f32(std::uint16_t h);

/// float -> bfloat16 bits, round-to-nearest-even.
inline std::uint16_t f32_to_bf16_bits(float f) {
  std::uint32_t u = bits_of(f);
  if ((u & 0x7FFFFFFFu) > 0x7F800000u) {  // NaN: keep payload's top bit set
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  const std::uint32_t rounding = 0x7FFFu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>((u + rounding) >> 16);
}

/// bfloat16 bits -> float (exact).
inline float bf16_bits_to_f32(std::uint16_t b) {
  return float_of(static_cast<std::uint32_t>(b) << 16);
}

}  // namespace detail

/// IEEE binary16 value with float conversions. Storage-only type: arithmetic
/// happens in float, mirroring accelerator accumulate-in-higher-precision.
struct Half {
  std::uint16_t bits = 0;

  Half() = default;
  explicit Half(float f) : bits(detail::f32_to_f16_bits(f)) {}
  explicit operator float() const { return detail::f16_bits_to_f32(bits); }
};

/// bfloat16 value with float conversions (same exponent range as float).
struct BFloat16 {
  std::uint16_t bits = 0;

  BFloat16() = default;
  explicit BFloat16(float f) : bits(detail::f32_to_bf16_bits(f)) {}
  explicit operator float() const { return detail::bf16_bits_to_f32(bits); }
};

/// Rounds a float through the given storage format and back.
/// quantize(x, kF32) is the identity.
float quantize(float x, DType dtype);

/// Largest finite value representable in the format.
float dtype_max(DType dtype);

/// Smallest positive *normal* value of the format.
float dtype_min_normal(DType dtype);

/// Machine epsilon of the format (spacing at 1.0).
float dtype_epsilon(DType dtype);

}  // namespace bgl
