#include "simnet/simnet.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace bgl::simnet {

NetworkSim::NetworkSim(topo::MachineSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  const std::size_t n = static_cast<std::size_t>(spec_.nodes);
  const std::size_t s = static_cast<std::size_t>(spec_.supernodes());
  avail_.assign(3 * n + 2 * s, 0.0);
}

std::size_t NetworkSim::resource_id(ResourceKind kind,
                                    std::int64_t index) const {
  const std::size_t n = static_cast<std::size_t>(spec_.nodes);
  const std::size_t i = static_cast<std::size_t>(index);
  switch (kind) {
    case kMemBus: return i;
    case kNicOut: return n + i;
    case kNicIn: return 2 * n + i;
    case kTrunkUp: return 3 * n + i;
    case kTrunkDown: return 3 * n + static_cast<std::size_t>(spec_.supernodes()) + i;
  }
  BGL_FAIL("bad resource kind");
}

double NetworkSim::resource_bw(ResourceKind kind) const {
  switch (kind) {
    case kMemBus: return spec_.intra_node.bandwidth_bps;
    case kNicOut:
    case kNicIn: return spec_.intra_super.bandwidth_bps;
    case kTrunkUp:
    case kTrunkDown:
      // Aggregate trunk: all nodes of a supernode share it, tapered.
      return spec_.inter_super.bandwidth_bps * spec_.supernode_size *
             spec_.trunk_taper;
  }
  BGL_FAIL("bad resource kind");
}

SimResult NetworkSim::run(std::span<const Message> messages) {
  std::fill(avail_.begin(), avail_.end(), 0.0);

  // Bucket by round, preserving input order within a round.
  int max_round = 0;
  for (const Message& m : messages) max_round = std::max(max_round, m.round);
  std::vector<std::vector<const Message*>> rounds(
      static_cast<std::size_t>(max_round) + 1);
  for (const Message& m : messages)
    rounds[static_cast<std::size_t>(m.round)].push_back(&m);

  SimResult result;
  result.message_count = static_cast<std::int64_t>(messages.size());

  double round_start = 0.0;
  std::vector<std::pair<std::size_t, double>> path;  // (resource, bw)
  for (const auto& round : rounds) {
    double round_end = round_start;
    for (const Message* m : round) {
      BGL_CHECK(m->src >= 0 && m->src < spec_.total_processes());
      BGL_CHECK(m->dst >= 0 && m->dst < spec_.total_processes());
      result.total_bytes += m->bytes;
      if (m->src == m->dst) continue;  // local copy: free in this model

      const std::int64_t src_node = spec_.node_of(m->src);
      const std::int64_t dst_node = spec_.node_of(m->dst);
      const std::int64_t src_super = spec_.supernode_of(m->src);
      const std::int64_t dst_super = spec_.supernode_of(m->dst);

      path.clear();
      double latency = 0.0;
      double flow_bw;  // per-flow bandwidth cap along the path
      if (src_node == dst_node) {
        path.emplace_back(resource_id(kMemBus, src_node), resource_bw(kMemBus));
        latency = spec_.intra_node.latency_s;
        flow_bw = spec_.intra_node.bandwidth_bps;
      } else if (src_super == dst_super) {
        path.emplace_back(resource_id(kNicOut, src_node), resource_bw(kNicOut));
        path.emplace_back(resource_id(kNicIn, dst_node), resource_bw(kNicIn));
        latency = spec_.intra_super.latency_s;
        flow_bw = spec_.intra_super.bandwidth_bps;
      } else {
        path.emplace_back(resource_id(kNicOut, src_node), resource_bw(kNicOut));
        path.emplace_back(resource_id(kTrunkUp, src_super),
                          resource_bw(kTrunkUp));
        path.emplace_back(resource_id(kTrunkDown, dst_super),
                          resource_bw(kTrunkDown));
        path.emplace_back(resource_id(kNicIn, dst_node), resource_bw(kNicIn));
        latency = spec_.inter_super.latency_s;
        // A single flow is capped by its per-node share of the global path.
        flow_bw = spec_.inter_super.bandwidth_bps;
      }

      double start = round_start;
      for (const auto& [rid, bw] : path) {
        start = std::max(start, avail_[rid]);
        flow_bw = std::min(flow_bw, bw);
      }
      const double finish = start + latency + m->bytes / flow_bw;
      for (const auto& [rid, bw] : path) {
        avail_[rid] = start + m->bytes / bw;
      }
      round_end = std::max(round_end, finish);
    }
    round_start = round_end;
  }
  result.total_time_s = round_start;

  // Report the busiest trunk occupation for taper diagnostics.
  const std::size_t n = static_cast<std::size_t>(spec_.nodes);
  const std::size_t s = static_cast<std::size_t>(spec_.supernodes());
  for (std::size_t i = 3 * n; i < 3 * n + 2 * s; ++i)
    result.max_trunk_busy_s = std::max(result.max_trunk_busy_s, avail_[i]);
  return result;
}

SimResult NetworkSim::run_pipelined(std::span<const Message> messages) {
  std::fill(avail_.begin(), avail_.end(), 0.0);

  // Bucket by round: a rank's round-k message depends on that rank's state
  // after rounds < k (its own prior sends injected, its prior receives
  // delivered) — but NOT on same-round deliveries, so intra-round traffic
  // stays concurrent (per-rank clocks snapshot at round entry).
  int max_round = 0;
  for (const Message& m : messages) max_round = std::max(max_round, m.round);
  std::vector<std::vector<const Message*>> rounds(
      static_cast<std::size_t>(max_round) + 1);
  for (const Message& m : messages)
    rounds[static_cast<std::size_t>(m.round)].push_back(&m);

  SimResult result;
  result.message_count = static_cast<std::int64_t>(messages.size());
  std::vector<double> rank_time(
      static_cast<std::size_t>(spec_.total_processes()), 0.0);
  std::vector<double> next_rank_time = rank_time;

  std::vector<std::pair<std::size_t, double>> path;
  double makespan = 0.0;
  for (const auto& round : rounds) {
  for (const Message* m : round) {
    BGL_CHECK(m->src >= 0 && m->src < spec_.total_processes());
    BGL_CHECK(m->dst >= 0 && m->dst < spec_.total_processes());
    result.total_bytes += m->bytes;
    if (m->src == m->dst) continue;

    const std::int64_t src_node = spec_.node_of(m->src);
    const std::int64_t dst_node = spec_.node_of(m->dst);
    const std::int64_t src_super = spec_.supernode_of(m->src);
    const std::int64_t dst_super = spec_.supernode_of(m->dst);

    path.clear();
    double latency;
    double flow_bw;
    if (src_node == dst_node) {
      path.emplace_back(resource_id(kMemBus, src_node), resource_bw(kMemBus));
      latency = spec_.intra_node.latency_s;
      flow_bw = spec_.intra_node.bandwidth_bps;
    } else if (src_super == dst_super) {
      path.emplace_back(resource_id(kNicOut, src_node), resource_bw(kNicOut));
      path.emplace_back(resource_id(kNicIn, dst_node), resource_bw(kNicIn));
      latency = spec_.intra_super.latency_s;
      flow_bw = spec_.intra_super.bandwidth_bps;
    } else {
      path.emplace_back(resource_id(kNicOut, src_node), resource_bw(kNicOut));
      path.emplace_back(resource_id(kTrunkUp, src_super),
                        resource_bw(kTrunkUp));
      path.emplace_back(resource_id(kTrunkDown, dst_super),
                        resource_bw(kTrunkDown));
      path.emplace_back(resource_id(kNicIn, dst_node), resource_bw(kNicIn));
      latency = spec_.inter_super.latency_s;
      flow_bw = spec_.inter_super.bandwidth_bps;
    }

    double start = rank_time[static_cast<std::size_t>(m->src)];
    double injection_bw = flow_bw;
    for (const auto& [rid, bw] : path) {
      start = std::max(start, avail_[rid]);
      flow_bw = std::min(flow_bw, bw);
    }
    injection_bw = path.front().second;
    const double finish = start + latency + m->bytes / flow_bw;
    for (const auto& [rid, bw] : path) avail_[rid] = start + m->bytes / bw;
    // Sender is free once the message is injected; receiver advances to
    // the delivery time (a blocking recv in the real runtime). Updates
    // land in the NEXT round's snapshot.
    next_rank_time[static_cast<std::size_t>(m->src)] =
        std::max(next_rank_time[static_cast<std::size_t>(m->src)],
                 start + m->bytes / injection_bw);
    next_rank_time[static_cast<std::size_t>(m->dst)] =
        std::max(next_rank_time[static_cast<std::size_t>(m->dst)], finish);
    makespan = std::max(makespan, finish);
  }
  rank_time = next_rank_time;
  }
  result.total_time_s = makespan;

  const std::size_t n = static_cast<std::size_t>(spec_.nodes);
  const std::size_t s = static_cast<std::size_t>(spec_.supernodes());
  for (std::size_t i = 3 * n; i < 3 * n + 2 * s; ++i)
    result.max_trunk_busy_s = std::max(result.max_trunk_busy_s, avail_[i]);
  return result;
}

}  // namespace bgl::simnet
