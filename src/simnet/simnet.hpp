// Event-driven store-and-forward network simulator.
//
// Estimates communication time for explicit message lists on a MachineSpec
// hierarchy, including contention: every message occupies shared resources
// (node memory bus, NIC injection/ejection, supernode trunk up/down) for its
// serialization time, FIFO per resource. Collective algorithms at scales too
// large to execute in-process are simulated by generating their exact
// message pattern (patterns.hpp) and running it here; the closed-form models
// in collectives/coll_cost.hpp are validated against these simulations.
//
// The model is deliberately store-and-forward-with-cut-through-cost:
//   start(m)  = max(round_start, avail(r) for r on path)
//   finish(m) = start + Σ hop latencies + bytes / min bandwidth on path
//   avail(r) ← start + bytes / bandwidth(r)   for each r on path
// Rounds are barriers: messages of round k start no earlier than the finish
// of round k-1, mirroring the round structure of the real algorithms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/machine.hpp"

namespace bgl::simnet {

/// One point-to-point message between process ranks.
struct Message {
  std::int64_t src = 0;   // source process rank (block placement)
  std::int64_t dst = 0;   // destination process rank
  double bytes = 0.0;
  int round = 0;          // barrier round index (non-decreasing preferred)
};

/// Simulation outcome.
struct SimResult {
  double total_time_s = 0.0;        // completion time of the last message
  double total_bytes = 0.0;         // traffic volume injected
  std::int64_t message_count = 0;
  double max_trunk_busy_s = 0.0;    // busiest supernode trunk occupation
};

/// Simulates a message list on the given machine.
class NetworkSim {
 public:
  explicit NetworkSim(topo::MachineSpec spec);

  /// Runs the messages (grouped by their `round` field) and returns timing.
  /// Messages may appear in any order; rounds are processed ascending and
  /// each round starts when the previous one fully completed.
  SimResult run(std::span<const Message> messages);

  /// Pipelined (LogP-style actor-clock) mode: no global barriers. Each
  /// message starts when its *source rank* is ready (its previous sends
  /// injected and expected data arrived) and its path resources free up;
  /// the destination rank's clock advances to the delivery time. Rounds
  /// order each rank's own messages but do not synchronize ranks, so
  /// chunked algorithms (ring allreduce, hierarchical a2a) pipeline across
  /// rounds exactly as the real implementations do. Reports <= run() for
  /// the same traffic.
  SimResult run_pipelined(std::span<const Message> messages);

  [[nodiscard]] const topo::MachineSpec& spec() const { return spec_; }

 private:
  enum ResourceKind { kMemBus, kNicOut, kNicIn, kTrunkUp, kTrunkDown };

  /// Dense resource id; lazily sized vectors hold availability times.
  std::size_t resource_id(ResourceKind kind, std::int64_t index) const;
  double resource_bw(ResourceKind kind) const;

  topo::MachineSpec spec_;
  std::vector<double> avail_;  // availability time per resource id
};

}  // namespace bgl::simnet
