// Message-pattern generators for the network simulator.
//
// Each generator emits exactly the (src, dst, bytes, round) messages that
// the corresponding real algorithm in collectives/coll.hpp would send, so
// simulating the pattern measures the algorithm's network behaviour at
// scales where in-process execution is infeasible.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/simnet.hpp"

namespace bgl::simnet {

/// Pairwise all-to-all: P-1 rounds, in round k rank r sends `bytes` to
/// (r+k) mod P.
std::vector<Message> pairwise_alltoall_pattern(std::int64_t ranks,
                                               double bytes_per_pair);

/// Bruck all-to-all: ceil(log2 P) rounds; in round k rank r sends the
/// blocks whose index has bit k set (about half the buffer) to r + 2^k.
std::vector<Message> bruck_alltoall_pattern(std::int64_t ranks,
                                            double bytes_per_pair);

/// Two-phase hierarchical all-to-all with groups of `group_size` ranks
/// (must divide `ranks`): phase 1 is an intra-group exchange of
/// ngroups*bytes chunks, phase 2 an inter-group exchange of
/// group_size*bytes chunks between ranks of equal local index.
std::vector<Message> hierarchical_alltoall_pattern(std::int64_t ranks,
                                                   double bytes_per_pair,
                                                   std::int64_t group_size);

/// Ring allreduce on `total_bytes` per rank: 2(P-1) rounds of
/// total_bytes/P-sized neighbour exchanges.
std::vector<Message> ring_allreduce_pattern(std::int64_t ranks,
                                            double total_bytes);

/// Recursive-doubling allreduce (P must be a power of two): log2 P rounds
/// of full-buffer pairwise exchanges.
std::vector<Message> recursive_doubling_allreduce_pattern(std::int64_t ranks,
                                                          double total_bytes);

/// Hierarchical allreduce: reduce within each group to a leader, ring
/// allreduce among leaders, broadcast back inside each group.
std::vector<Message> hierarchical_allreduce_pattern(std::int64_t ranks,
                                                    double total_bytes,
                                                    std::int64_t group_size);

}  // namespace bgl::simnet
