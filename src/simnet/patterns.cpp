#include "simnet/patterns.hpp"

#include "core/error.hpp"
#include "core/math_util.hpp"

namespace bgl::simnet {

std::vector<Message> pairwise_alltoall_pattern(std::int64_t ranks,
                                               double bytes_per_pair) {
  BGL_CHECK(ranks >= 1);
  std::vector<Message> msgs;
  msgs.reserve(static_cast<std::size_t>(ranks * (ranks - 1)));
  for (std::int64_t k = 1; k < ranks; ++k) {
    for (std::int64_t r = 0; r < ranks; ++r) {
      msgs.push_back({r, (r + k) % ranks, bytes_per_pair,
                      static_cast<int>(k - 1)});
    }
  }
  return msgs;
}

std::vector<Message> bruck_alltoall_pattern(std::int64_t ranks,
                                            double bytes_per_pair) {
  BGL_CHECK(ranks >= 1);
  std::vector<Message> msgs;
  int round = 0;
  for (std::int64_t mask = 1; mask < ranks; mask <<= 1, ++round) {
    // Number of block indices in [0, ranks) with this bit set.
    std::int64_t blocks = 0;
    for (std::int64_t i = 0; i < ranks; ++i)
      if (i & mask) ++blocks;
    const double bytes = bytes_per_pair * static_cast<double>(blocks);
    for (std::int64_t r = 0; r < ranks; ++r) {
      msgs.push_back({r, (r + mask) % ranks, bytes, round});
    }
  }
  return msgs;
}

std::vector<Message> hierarchical_alltoall_pattern(std::int64_t ranks,
                                                   double bytes_per_pair,
                                                   std::int64_t group_size) {
  BGL_CHECK(ranks >= 1 && group_size >= 1);
  BGL_ENSURE(ranks % group_size == 0,
             "group size " << group_size << " must divide " << ranks);
  const std::int64_t g = group_size;
  const std::int64_t ngroups = ranks / g;
  std::vector<Message> msgs;

  // Phase 1: intra-group exchange; each step moves ngroups chunks.
  for (std::int64_t step = 1; step < g; ++step) {
    for (std::int64_t r = 0; r < ranks; ++r) {
      const std::int64_t grp = r / g;
      const std::int64_t local = r % g;
      const std::int64_t dst = grp * g + (local + step) % g;
      msgs.push_back({r, dst, bytes_per_pair * static_cast<double>(ngroups),
                      static_cast<int>(step - 1)});
    }
  }
  // Phase 2: inter-group exchange among equal local indices; each step
  // moves g aggregated chunks.
  const int phase2_base = static_cast<int>(g > 1 ? g - 1 : 0);
  for (std::int64_t step = 1; step < ngroups; ++step) {
    for (std::int64_t r = 0; r < ranks; ++r) {
      const std::int64_t grp = r / g;
      const std::int64_t local = r % g;
      const std::int64_t dst = ((grp + step) % ngroups) * g + local;
      msgs.push_back({r, dst, bytes_per_pair * static_cast<double>(g),
                      phase2_base + static_cast<int>(step - 1)});
    }
  }
  return msgs;
}

std::vector<Message> ring_allreduce_pattern(std::int64_t ranks,
                                            double total_bytes) {
  BGL_CHECK(ranks >= 1);
  std::vector<Message> msgs;
  if (ranks == 1) return msgs;
  const double block = total_bytes / static_cast<double>(ranks);
  // reduce-scatter: P-1 rounds, then allgather: P-1 rounds.
  for (std::int64_t k = 0; k < 2 * (ranks - 1); ++k) {
    for (std::int64_t r = 0; r < ranks; ++r) {
      msgs.push_back({r, (r + 1) % ranks, block, static_cast<int>(k)});
    }
  }
  return msgs;
}

std::vector<Message> recursive_doubling_allreduce_pattern(std::int64_t ranks,
                                                          double total_bytes) {
  BGL_CHECK(ranks >= 1);
  BGL_ENSURE(is_pow2(static_cast<std::uint64_t>(ranks)),
             "recursive doubling needs power-of-two ranks, got " << ranks);
  std::vector<Message> msgs;
  int round = 0;
  for (std::int64_t mask = 1; mask < ranks; mask <<= 1, ++round) {
    for (std::int64_t r = 0; r < ranks; ++r) {
      msgs.push_back({r, r ^ mask, total_bytes, round});
    }
  }
  return msgs;
}

std::vector<Message> hierarchical_allreduce_pattern(std::int64_t ranks,
                                                    double total_bytes,
                                                    std::int64_t group_size) {
  BGL_CHECK(ranks >= 1 && group_size >= 1);
  BGL_ENSURE(ranks % group_size == 0,
             "group size " << group_size << " must divide " << ranks);
  const std::int64_t g = group_size;
  const std::int64_t ngroups = ranks / g;
  std::vector<Message> msgs;

  // Phase 1: members send to the group leader (binomial tree flattened to
  // one round per tree level).
  int round = 0;
  for (std::int64_t mask = 1; mask < g; mask <<= 1) ++round;
  int level = 0;
  for (std::int64_t mask = 1; mask < g; mask <<= 1, ++level) {
    for (std::int64_t grp = 0; grp < ngroups; ++grp) {
      for (std::int64_t local = 0; local < g; ++local) {
        // Receiver at this level: local % (2*mask) == 0 with partner local+mask.
        if (local % (2 * mask) == 0 && local + mask < g) {
          msgs.push_back({grp * g + local + mask, grp * g + local, total_bytes,
                          level});
        }
      }
    }
  }
  // Phase 2: ring allreduce among leaders.
  const double block = ngroups > 1
                           ? total_bytes / static_cast<double>(ngroups)
                           : total_bytes;
  for (std::int64_t k = 0; ngroups > 1 && k < 2 * (ngroups - 1); ++k) {
    for (std::int64_t grp = 0; grp < ngroups; ++grp) {
      msgs.push_back({grp * g, ((grp + 1) % ngroups) * g, block,
                      round + static_cast<int>(k)});
    }
  }
  const int bcast_base = round + static_cast<int>(ngroups > 1 ? 2 * (ngroups - 1) : 0);
  // Phase 3: broadcast back down the binomial tree.
  level = 0;
  for (std::int64_t mask = floor_pow2(static_cast<std::uint64_t>(g));
       mask >= 1; mask >>= 1, ++level) {
    for (std::int64_t grp = 0; grp < ngroups; ++grp) {
      for (std::int64_t local = 0; local < g; ++local) {
        if (local % (2 * mask) == 0 && local + mask < g) {
          msgs.push_back({grp * g + local, grp * g + local + mask, total_bytes,
                          bcast_base + level});
        }
      }
    }
  }
  return msgs;
}

}  // namespace bgl::simnet
