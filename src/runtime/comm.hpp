// Message-passing runtime.
//
// This is the substitution for MPI on the Sunway machine (see DESIGN.md §1):
// by default ranks are threads of one process and point-to-point messages
// are buffered byte vectors moved through per-rank mailboxes. The runtime
// is written against the rt::Transport interface (runtime/transport.hpp,
// DESIGN.md §12), so the same Communicator API also runs over loopback TCP
// sockets — with ranks as real OS processes under the SPMD launcher —
// selected by WorldOptions.transport / $BGL_TRANSPORT. Collective
// *algorithms* (bgl::coll) are implemented on top of this p2p layer exactly
// as they would be on a real interconnect, so their communication structure
// — not just their result — is executed for real.
//
// Semantics:
//  * send() is buffered and never blocks (like MPI_Bsend), which makes
//    pairwise exchange patterns deadlock-free.
//  * recv() blocks until a matching (communicator, source, tag) message
//    arrives.
//  * If any rank throws, the world is poisoned: blocked receivers throw too,
//    and World::run rethrows the first error (the poison cause, not a
//    secondary "poisoned" wake-up) on the caller thread.
//
// Fault tolerance (see DESIGN.md §6):
//  * every message is CRC32-framed; a payload corrupted in flight raises
//    CorruptMessageError at the receiver instead of a silent wrong answer;
//  * WorldOptions.timeout_s converts a silent hang in recv()/barrier() into
//    a TimeoutError naming the blocked (comm, src, tag);
//  * a FaultInjector (runtime/fault.hpp) installed via WorldOptions can
//    drop/delay/corrupt messages and kill a rank (RankFailureError), which
//    is what the elastic checkpoint-restart trainer recovers from.
//
// Self-healing ladder (see DESIGN.md §10) — each tier absorbs a fault class
// so the next never sees it:
//  * tier 1 (WorldOptions.retry): point-to-point streams are
//    sequence-numbered with a send-side replay buffer; a receiver that
//    detects a loss (sequence gap, frame missing past a backoff interval)
//    or a CRC failure requests retransmission with bounded exponential
//    backoff instead of raising. Dropped/corrupted messages become retried
//    deliveries, not world poison.
//  * tier 2 (WorldOptions.heartbeat): a per-rank beater thread feeds a
//    φ-style suspicion accumulator (runtime/recovery.hpp); blocked ops
//    whose deadline expires against a peer that is still beating record a
//    straggler metric and keep waiting — TimeoutError is reserved for
//    peers the detector has confirmed dead.
//  * tier 3 (WorldOptions.shrink_on_death): a confirmed death interrupts
//    the survivors with EpochInterrupt instead of poisoning the world;
//    they drain the fabric collectively via Communicator::shrink(), which
//    bumps the communicator *epoch* (stamped into every op and salted into
//    the rebuilt communicator ids, so stale traffic from the old epoch can
//    never match) and returns the world of survivors, in-process.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "runtime/recovery.hpp"

namespace bgl::rt {

class FaultInjector;  // runtime/fault.hpp
class Transport;      // runtime/transport.hpp

/// --- error taxonomy --------------------------------------------------------
/// Typed errors let callers distinguish infrastructure failures (recoverable
/// by checkpoint-restart) from plain bugs. All derive from bgl::Error, so
/// existing catch sites keep working.

/// A message whose CRC32 check failed at the receiver (payload corrupted in
/// flight).
class CorruptMessageError : public Error {
 public:
  using Error::Error;
};

/// recv()/barrier() exceeded WorldOptions.timeout_s — a hang converted into
/// an actionable error naming the blocked operation.
class TimeoutError : public Error {
 public:
  using Error::Error;
};

/// A rank died (raised by the fault injector at the configured kill point).
/// ElasticTrainer catches this to restart on a smaller world.
class RankFailureError : public Error {
 public:
  using Error::Error;
};

/// The world changed underneath a blocked or posted operation: a rank was
/// confirmed dead and the survivors must rebuild (tier 3). Raised only when
/// WorldOptions.shrink_on_death is armed; catch it, abandon per-epoch state
/// (models, pending ops), and call Communicator::shrink() to obtain the
/// world of survivors. Also raised by any op on a communicator from a
/// superseded epoch (stale traffic rejection).
class EpochInterrupt : public Error {
 public:
  using Error::Error;
};

/// Per-World runtime configuration.
struct WorldOptions {
  /// Seconds a recv()/barrier() may block before TimeoutError; 0 = forever.
  /// With heartbeats armed the deadline only fires against a peer the
  /// detector confirmed dead — see HeartbeatOptions.straggler_grace.
  double timeout_s = 0.0;
  /// CRC32C-frame every message and verify on receive. Off by default so
  /// the fault-free hot path stays unframed (the < 5% bench_alltoall
  /// budget); fault-tolerance experiments and ElasticTrainer arm it.
  /// bench_fault_overhead reports the armed cost.
  bool checksum_messages = false;
  /// Optional fault injector, consulted on every send/recv. Non-owning;
  /// must outlive the run() call. nullptr = fault-free.
  FaultInjector* fault_injector = nullptr;
  /// Tier 1 — ack/retransmit with bounded backoff (BGL_RETRY_MAX,
  /// BGL_RETRY_BACKOFF_MS; disabled unless the env enables it).
  RetryOptions retry = retry_options_from_env();
  /// Tier 2 — heartbeat failure detection (BGL_HEARTBEAT_MS; off unless
  /// the env enables it).
  HeartbeatOptions heartbeat = heartbeat_options_from_env();
  /// Tier 3 — on a confirmed rank death, interrupt survivors with
  /// EpochInterrupt (for an in-place Communicator::shrink()) instead of
  /// poisoning the world. A rank function that throws RankFailureError
  /// under this mode resigns its rank and returns instead of killing the
  /// job.
  bool shrink_on_death = false;
  /// Transport backend: "inproc" (threads over shared mailboxes, the
  /// default), "tcp" (loopback sockets; real processes under the SPMD
  /// launcher — see DESIGN.md §12). Empty = $BGL_TRANSPORT, else inproc.
  /// Unknown names fail loudly at World::run.
  std::string transport;
};

namespace detail {

/// Reinterprets a byte payload as a vector of trivially copyable T.
///
/// The length check raises the typed CorruptMessageError, not a contract
/// abort: the length comes off the wire, so on a transport without CRC
/// framing a truncated frame must surface as the same recoverable error
/// class as a corrupted one (catch sites already distinguish infrastructure
/// failures from bugs by that type).
template <typename T>
[[nodiscard]] std::vector<T> bytes_to_vec(std::vector<std::byte>&& raw) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (raw.size() % sizeof(T) != 0)
    throw CorruptMessageError(
        "corrupt message: payload of " + std::to_string(raw.size()) +
        " bytes is not a multiple of the element size " +
        std::to_string(sizeof(T)) + " (truncated or mis-framed)");
  std::vector<T> out(raw.size() / sizeof(T));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

}  // namespace detail

/// Handle to one nonblocking operation posted with Communicator::isend() /
/// irecv(). Completion is driven by the caller: test() polls without
/// blocking, wait() blocks (honoring WorldOptions.timeout_s, CRC framing
/// and fault injection exactly like the blocking recv path). A completed
/// receive hands its payload out through take_bytes()/take<T>().
///
/// Handles are move-only. Abandoning a pending irecv is safe: the matching
/// message simply stays queued for the next receive of that (src, tag).
class PendingOp {
 public:
  /// An empty, already-complete op (no payload).
  PendingOp();
  ~PendingOp();
  PendingOp(PendingOp&&) noexcept;
  PendingOp& operator=(PendingOp&&) noexcept;
  PendingOp(const PendingOp&) = delete;
  PendingOp& operator=(const PendingOp&) = delete;

  /// True once the operation has completed (payload available for recvs).
  [[nodiscard]] bool done() const;

  /// Nonblocking progress: attempts to complete the op, returns done().
  /// May throw CorruptMessageError (CRC) or the poison error.
  bool test();

  /// Blocks until completion. WorldOptions.timeout_s bounds the wait,
  /// measured from this call (a TimeoutError names the blocked op).
  void wait();

  /// Moves out the payload of a completed receive. wait()s if pending.
  [[nodiscard]] std::vector<std::byte> take_bytes();

  /// Typed payload of a completed receive.
  template <typename T>
  [[nodiscard]] std::vector<T> take() {
    return detail::bytes_to_vec<T>(take_bytes());
  }

 private:
  friend class Communicator;
  struct State;  // defined in comm.cpp
  std::shared_ptr<State> state_;
};

/// A group of ranks that can exchange messages and run collectives.
///
/// Communicators are value-ish handles: copying one refers to the same
/// group. split() creates disjoint sub-communicators, MPI_Comm_split-style.
class Communicator {
 public:
  /// Rank of the calling thread within this communicator, in [0, size()).
  [[nodiscard]] int rank() const { return rank_; }

  /// Number of ranks in this communicator.
  [[nodiscard]] int size() const { return static_cast<int>(group_.size()); }

  /// World rank of local rank r (identity for the world communicator).
  [[nodiscard]] int world_rank(int r) const {
    BGL_CHECK(r >= 0 && r < size());
    return group_[static_cast<std::size_t>(r)];
  }

  /// --- point to point -----------------------------------------------------

  /// Buffered send of raw bytes to rank `dst` with tag `tag`. Never blocks.
  void send_bytes(int dst, int tag, std::span<const std::byte> data) const;

  /// Blocking receive of one message from `src` with tag `tag`.
  [[nodiscard]] std::vector<std::byte> recv_bytes(int src, int tag) const;

  /// Typed span send (T must be trivially copyable).
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) const {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               {reinterpret_cast<const std::byte*>(data.data()),
                data.size() * sizeof(T)});
  }

  /// Typed receive; the message length must be a multiple of sizeof(T).
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int src, int tag) const {
    return detail::bytes_to_vec<T>(recv_bytes(src, tag));
  }

  /// --- nonblocking point to point ----------------------------------------
  /// The nonblocking layer composes with the rest of the runtime: isend
  /// goes through the same CRC-framing/fault-injection path as send, and a
  /// PendingOp's wait() honors WorldOptions.timeout_s.

  /// Nonblocking send. On this buffered fabric the message is committed
  /// immediately (like MPI_Ibsend), so the returned handle is already
  /// complete; it exists for symmetry with irecv and for call sites written
  /// against a genuinely asynchronous transport.
  PendingOp isend(int dst, int tag, std::span<const std::byte> data) const;

  template <typename T>
  PendingOp isend(int dst, int tag, std::span<const T> data) const {
    static_assert(std::is_trivially_copyable_v<T>);
    return isend(dst, tag,
                 std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(data.data()),
                     data.size() * sizeof(T)));
  }

  /// Posts a nonblocking receive for one message from `src` with tag `tag`.
  /// Counts as one runtime op for the fault injector (at post time, like
  /// the blocking recv).
  [[nodiscard]] PendingOp irecv(int src, int tag) const;

  /// Combined exchange: sends to `dst`, then receives from `src`.
  /// Safe because send is buffered.
  template <typename T>
  [[nodiscard]] std::vector<T> sendrecv(int dst, std::span<const T> data,
                                        int src, int tag) const {
    send(dst, tag, data);
    return recv<T>(src, tag);
  }

  /// --- synchronization & topology ----------------------------------------

  /// Blocks until every rank of this communicator has entered.
  void barrier() const;

  /// Splits into sub-communicators: ranks with equal `color` form one group,
  /// ordered by (`key`, old rank). Collective: every rank must call.
  [[nodiscard]] Communicator split(int color, int key) const;

  /// --- self-healing (tier 3, DESIGN.md §10) ------------------------------

  /// Generation of the world this communicator belongs to. Bumped by each
  /// in-place shrink; ops on a communicator from a superseded epoch raise
  /// EpochInterrupt (stale-traffic rejection).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// This rank abandons the world: it is marked dead and, when
  /// WorldOptions.shrink_on_death is armed, the survivors are interrupted
  /// with EpochInterrupt so they can shrink() around it. The resigning
  /// rank must do no further communication and return from its rank
  /// function. Idempotent.
  void resign() const;

  /// Collective among the survivors after an EpochInterrupt: waits for
  /// every live rank, drains the fabric (stale messages purged, replay
  /// buffers flushed, barrier state reset), bumps the epoch, and returns
  /// the world communicator of the survivors — ranks renumbered 0..S-1 in
  /// old world-rank order, no World respawn. Callable on any communicator
  /// of the old epoch; an evicted rank (confirmed dead by its peers)
  /// raises RankFailureError instead of rejoining.
  [[nodiscard]] Communicator shrink() const;

 private:
  friend class World;

  Communicator(std::shared_ptr<Transport> transport, std::uint64_t comm_id,
               std::vector<int> group, int rank, std::uint64_t epoch = 0);

  // The split counter is NOT here: it lives transport-side, keyed by
  // (comm_id, world rank), so copies of a handle share one sequence
  // (Transport::next_split_seq). Per-handle state on a value-ish copyable
  // handle would let a copy and the original derive colliding child ids.
  std::shared_ptr<Transport> transport_;
  std::uint64_t comm_id_ = 0;
  std::vector<int> group_;  // local rank -> world rank
  int rank_ = -1;
  std::uint64_t epoch_ = 0;
};

/// Spawns `size` rank threads, runs `fn(comm)` on each, joins, and rethrows
/// the first rank error (if any) on the calling thread. "First" is the
/// error that poisoned the world — e.g. the RankFailureError of a killed
/// rank, not the secondary errors of the ranks it woke up.
class World {
 public:
  using RankFn = std::function<void(Communicator&)>;

  /// Runs a parallel region with default options. `size` must be >= 1.
  static void run(int size, const RankFn& fn);

  /// Runs a parallel region with explicit runtime options (timeouts,
  /// message checksumming, fault injection).
  static void run(int size, const WorldOptions& options, const RankFn& fn);

 private:
  /// Thread-mode driver, shared by every transport backend.
  static void run_threads(const std::shared_ptr<Transport>& transport,
                          int size, const WorldOptions& options,
                          const RankFn& fn);
  /// SPMD driver: this process hosts exactly one rank (BGL_RANK) of a
  /// multi-process world over the socket transport.
  static void run_spmd(int size, const WorldOptions& options,
                       const RankFn& fn);
};

}  // namespace bgl::rt
