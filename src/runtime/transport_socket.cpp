#include "runtime/transport_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/crc32.hpp"
#include "obs/blackbox.hpp"
#include "obs/metrics.hpp"
#include "runtime/fault.hpp"

namespace bgl::rt::detail {

namespace {

constexpr std::uint32_t kFrameMagic = 0xB6A10F7A;
/// Upper bound on one frame's payload; anything larger on the wire means a
/// corrupted stream, not a legitimate message.
constexpr std::uint32_t kMaxPayload = 1u << 30;

Clock::duration seconds_of(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

/// Blocking write of the whole buffer (connection setup only; steady-state
/// writes are nonblocking and pump-driven).
void write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      BGL_FAIL("socket write failed during setup: " << std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Blocking read of exactly `len` bytes (connection setup only).
void read_exact(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      BGL_FAIL("socket read failed during setup: " << std::strerror(errno));
    }
    BGL_ENSURE(n > 0, "peer closed the connection during setup");
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

[[nodiscard]] int make_loopback_listener(std::uint16_t* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BGL_ENSURE(fd >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  BGL_ENSURE(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
             "bind(127.0.0.1:0) failed: " << std::strerror(errno));
  BGL_ENSURE(::listen(fd, 128) == 0,
             "listen() failed: " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  BGL_ENSURE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0,
             "getsockname() failed: " << std::strerror(errno));
  *port_out = ntohs(bound.sin_port);
  return fd;
}

[[nodiscard]] int connect_loopback(std::uint16_t port, double deadline_s) {
  const auto deadline = Clock::now() + seconds_of(deadline_s);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    BGL_ENSURE(fd >= 0, "socket() failed: " << std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      return fd;
    const int err = errno;
    ::close(fd);
    BGL_ENSURE(err == ECONNREFUSED || err == EINTR || err == ETIMEDOUT,
               "connect(127.0.0.1:" << port
                                    << ") failed: " << std::strerror(err));
    BGL_ENSURE(Clock::now() < deadline,
               "connect(127.0.0.1:" << port << ") timed out after "
                                    << deadline_s << "s (peer never came up)");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace

SocketTransport::SocketTransport(int size, const WorldOptions& options)
    : size_(size), options_(options) {
  hosted_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    hosted_.push_back(r);
    shards_.push_back(std::make_unique<Shard>());
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  BGL_ENSURE(wake_fd_ >= 0, "eventfd() failed: " << std::strerror(errno));
  build_thread_mode_mesh();
  start_pump();
}

SocketTransport::SocketTransport(int size, const WorldOptions& options,
                                 const SpmdConfig& cfg)
    : size_(size), options_(options), spmd_(true), cfg_(cfg) {
  BGL_ENSURE(cfg.world_size == size,
             "SPMD world size mismatch: World::run(" << size
                                                     << ") vs BGL_WORLD_SIZE="
                                                     << cfg.world_size);
  hosted_.push_back(cfg.rank);
  shards_.push_back(std::make_unique<Shard>());
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  BGL_ENSURE(wake_fd_ >= 0, "eventfd() failed: " << std::strerror(errno));
  build_spmd_mesh();
  start_pump();
}

SocketTransport::~SocketTransport() {
  stopping_.store(true);
  wake_pump();
  if (pump_.joinable()) pump_.join();
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void SocketTransport::set_sockopts(int fd) {
  // Nagle would batch the small ping-pong frames the barrier and the
  // conformance suites live on; the transport does its own batching via the
  // outbound deques.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void SocketTransport::set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  BGL_ENSURE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

void SocketTransport::build_thread_mode_mesh() {
  std::uint16_t port = 0;
  listen_fd_ = make_loopback_listener(&port);
  // Sequential connect-then-accept per pair: on loopback the accept is
  // guaranteed to return the connection just initiated, so no handshake
  // frame is needed to identify the pair.
  for (int i = 0; i < size_; ++i) {
    for (int j = i + 1; j < size_; ++j) {
      const int cfd = connect_loopback(port, /*deadline_s=*/30.0);
      const int afd = ::accept(listen_fd_, nullptr, nullptr);
      BGL_ENSURE(afd >= 0, "accept() failed: " << std::strerror(errno));
      for (const int fd : {cfd, afd}) {
        set_sockopts(fd);
        set_nonblocking(fd);
      }
      auto a = std::make_unique<Conn>();
      a->fd = cfd;
      a->owner = i;
      a->peer = j;
      auto b = std::make_unique<Conn>();
      b->fd = afd;
      b->owner = j;
      b->peer = i;
      links_[{i, j}] = a.get();
      links_[{j, i}] = b.get();
      conns_.push_back(std::move(a));
      conns_.push_back(std::move(b));
    }
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void SocketTransport::build_spmd_mesh() {
  const int me = cfg_.rank;
  std::uint16_t port = 0;
  listen_fd_ = make_loopback_listener(&port);

  // Sequential World::run calls are SPMD too (every process makes the same
  // sequence of runs), so a per-process generation counter keeps run n+1's
  // rendezvous files from colliding with run n's stale ports.
  static std::atomic<int> spmd_generation{0};
  const int generation = spmd_generation.fetch_add(1);
  const auto port_file = [this, generation](int rank) {
    return cfg_.rendezvous_dir + "/rank_" + std::to_string(rank) + ".g" +
           std::to_string(generation) + ".port";
  };

  // Publish our port atomically (write-then-rename), so a peer never reads
  // a half-written file.
  const std::string final_path = port_file(me);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path);
    BGL_ENSURE(out.good(), "cannot write port file " << tmp_path);
    out << port << "\n";
  }
  BGL_ENSURE(std::rename(tmp_path.c_str(), final_path.c_str()) == 0,
             "rename(" << tmp_path << ") failed: " << std::strerror(errno));

  // Connect to every lower rank; accept from every higher rank. The hello
  // frame identifies the connector (accept order is arbitrary).
  for (int peer = 0; peer < me; ++peer) {
    const std::string peer_path = port_file(peer);
    const auto deadline = Clock::now() + seconds_of(60.0);
    int peer_port = 0;
    for (;;) {
      std::ifstream in(peer_path);
      if (in.good() && (in >> peer_port) && peer_port > 0) break;
      BGL_ENSURE(Clock::now() < deadline,
                 "rank " << me << " timed out waiting for " << peer_path);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const int fd =
        connect_loopback(static_cast<std::uint16_t>(peer_port), 60.0);
    FrameHeader hello{};
    hello.magic = kFrameMagic;
    hello.type = static_cast<std::uint8_t>(FrameType::kHello);
    hello.src = me;
    hello.dst = peer;
    write_all(fd, &hello, sizeof hello);
    set_sockopts(fd);
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->owner = me;
    c->peer = peer;
    links_[{me, peer}] = c.get();
    conns_.push_back(std::move(c));
  }
  for (int n = me + 1; n < size_; ++n) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, /*ms=*/120000);
    BGL_ENSURE(pr > 0, "rank " << me << " timed out in accept ("
                               << (n - me - 1) << " of " << (size_ - me - 1)
                               << " higher ranks connected)");
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    BGL_ENSURE(fd >= 0, "accept() failed: " << std::strerror(errno));
    FrameHeader hello{};
    read_exact(fd, &hello, sizeof hello);
    BGL_ENSURE(hello.magic == kFrameMagic &&
                   hello.type == static_cast<std::uint8_t>(FrameType::kHello),
               "bad hello frame on rank " << me);
    const int peer = hello.src;
    BGL_ENSURE(peer > me && peer < size_,
               "hello from unexpected rank " << peer);
    set_sockopts(fd);
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->owner = me;
    c->peer = peer;
    links_[{me, peer}] = c.get();
    conns_.push_back(std::move(c));
  }
  for (auto& c : conns_) set_nonblocking(c->fd);
  ::close(listen_fd_);
  listen_fd_ = -1;
}

int SocketTransport::hosted_index(int world_rank) const {
  if (!spmd_) {
    BGL_CHECK(world_rank >= 0 && world_rank < size_);
    return world_rank;
  }
  BGL_CHECK(world_rank == cfg_.rank);
  return 0;
}

bool SocketTransport::hosts(int world_rank) const {
  return !spmd_ || world_rank == cfg_.rank;
}

SocketTransport::Conn* SocketTransport::link(int owner, int peer) {
  const auto it = links_.find({owner, peer});
  BGL_CHECK(it != links_.end());
  return it->second;
}

std::vector<std::byte> SocketTransport::make_frame(
    FrameType type, const FrameHeader& proto,
    std::span<const std::byte> payload) {
  FrameHeader h = proto;
  h.magic = kFrameMagic;
  h.type = static_cast<std::uint8_t>(type);
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::byte> frame(sizeof h + payload.size());
  std::memcpy(frame.data(), &h, sizeof h);
  if (!payload.empty())
    std::memcpy(frame.data() + sizeof h, payload.data(), payload.size());
  return frame;
}

void SocketTransport::enqueue(Conn* conn, std::vector<std::byte> frame) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    if (conn->closed) return;  // peer gone; the receive side times out
    conn->outbound.push_back(std::move(frame));
  }
  wake_pump();
}

void SocketTransport::route(int src, int dst, std::vector<std::byte> frame) {
  if (dst == src) {
    // Self-traffic loops back without touching a socket (there is no
    // self-connection), through the same dispatch the pump uses.
    FrameHeader h{};
    std::memcpy(&h, frame.data(), sizeof h);
    std::vector<std::byte> payload(frame.begin() + sizeof h, frame.end());
    dispatch(h, std::move(payload));
    return;
  }
  enqueue(link(src, dst), std::move(frame));
}

void SocketTransport::emit(std::uint64_t comm_id, int src, int dst, int tag,
                           std::uint64_t seq,
                           std::span<const std::byte> payload,
                           std::uint32_t crc, bool checksummed,
                           bool face_injector) {
  FrameHeader h{};
  h.comm_id = comm_id;
  h.src = src;
  h.dst = dst;
  h.tag = tag;
  h.seq = seq;
  h.crc = crc;
  h.flags = checksummed ? 1 : 0;
  FaultInjector* injector =
      face_injector ? options_.fault_injector : nullptr;
  if (injector == nullptr) {
    route(src, dst, make_frame(FrameType::kData, h, payload));
    return;
  }
  // The injector may flip a bit in place; it gets a private copy (the CRC
  // was computed on the original, so corruption is detectable, and the
  // replay buffer's pristine frame is untouched for retransmission).
  std::vector<std::byte> bytes(payload.begin(), payload.end());
  switch (injector->on_message(src, dst, tag, bytes)) {
    case FaultAction::kDrop:
      obs::count("comm.fault.dropped");
      obs::blackbox_record(src, obs::BlackboxKind::kDrop, dst, tag, comm_id,
                           seq);
      if (seq != 0) {
        // The frame vanishes, but the watermark evidence must still travel:
        // a tombstone carries the committed sequence number so the
        // receiver's probe can tell "lost" from "not sent yet".
        obs::blackbox_record(src, obs::BlackboxKind::kTombstone, dst, tag,
                             comm_id, seq);
        route(src, dst, make_frame(FrameType::kTombstone, h, {}));
      }
      return;
    case FaultAction::kDelay:
      obs::count("comm.fault.delayed");
      h.delay_s = injector->delay_for(bytes.size());
      break;
    case FaultAction::kCorrupt:
      obs::count("comm.fault.corrupted");
      break;
    case FaultAction::kDeliver:
      break;
  }
  route(src, dst, make_frame(FrameType::kData, h, bytes));
}

void SocketTransport::post_internal(std::uint64_t comm_id, int src, int dst,
                                    int tag,
                                    std::span<const std::byte> payload) {
  const bool checksummed = options_.checksum_messages;
  const std::uint32_t crc = checksummed ? crc32(payload) : 0;
  std::uint64_t seq = 0;
  if (options_.retry.enabled) {
    Shard& sh = *shards_[static_cast<std::size_t>(hosted_index(src))];
    std::lock_guard<std::mutex> lock(sh.sender.mutex);
    SendChannel& ch = sh.sender.channels[SendKey{comm_id, dst, tag}];
    seq = ch.next_seq++;
    ch.replay.push_back(ReplayEntry{
        seq,
        std::make_shared<std::vector<std::byte>>(payload.begin(),
                                                 payload.end()),
        crc, checksummed});
  }
  emit(comm_id, src, dst, tag, seq, payload, crc, checksummed,
       /*face_injector=*/false);
}

void SocketTransport::send(std::uint64_t comm_id, int src, int dst, int tag,
                           std::span<const std::byte> data,
                           std::uint64_t /*epoch*/) {
  if (options_.fault_injector != nullptr)
    options_.fault_injector->on_op(src);  // may raise RankFailureError

  const bool checksummed = options_.checksum_messages;
  const std::uint32_t crc = checksummed ? crc32(data) : 0;
  std::uint64_t seq = 0;
  if (options_.retry.enabled) {
    // Tier-1 reliable path: the pristine frame enters this channel's replay
    // buffer before it faces the injector, exactly like the inproc fabric.
    Shard& sh = *shards_[static_cast<std::size_t>(hosted_index(src))];
    std::lock_guard<std::mutex> lock(sh.sender.mutex);
    SendChannel& ch = sh.sender.channels[SendKey{comm_id, dst, tag}];
    seq = ch.next_seq++;
    ch.replay.push_back(ReplayEntry{
        seq,
        std::make_shared<std::vector<std::byte>>(data.begin(), data.end()),
        crc, checksummed});
  }
  emit(comm_id, src, dst, tag, seq, data, crc, checksummed,
       /*face_injector=*/true);
}

void SocketTransport::note_op(int world_rank) {
  if (options_.fault_injector != nullptr)
    options_.fault_injector->on_op(world_rank);
}

std::vector<std::byte> SocketTransport::recv(std::uint64_t comm_id, int src,
                                             int self, int tag,
                                             std::uint64_t epoch) {
  note_op(self);
  return wait_posted(comm_id, src, self, tag, epoch);
}

Clock::duration SocketTransport::timeout_duration() const {
  return seconds_of(options_.timeout_s);
}

void SocketTransport::append_retry_context(std::ostringstream& os,
                                           int attempts,
                                           Clock::time_point start) const {
  if (!options_.retry.enabled) return;
  os << "; retry layer: " << attempts << " retransmit attempts over "
     << std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count()
     << " ms";
}

bool SocketTransport::probe_locked(std::unique_lock<std::mutex>& lock,
                                   Mailbox& box, const Key& key,
                                   std::uint64_t comm_id, int src, int dst,
                                   int tag) {
  MailChannel& ch = box.channels[key];
  RecvChannel& rc = ch.rc;
  if (ch.sent < rc.expected) {
    // Not sent yet (no data frame or tombstone reached the watermark):
    // sleep until the next push; reset the pacing for a real loss later.
    rc.next_probe = Clock::time_point{};
    return false;
  }
  const auto now = Clock::now();
  if (rc.next_probe != Clock::time_point{} && now < rc.next_probe)
    return false;
  // The watermark proves the sender committed this sequence number, so the
  // retransmit request will find it in the replay buffer; the attempt is
  // charged here (the response is asynchronous).
  ++rc.attempts;
  if (rc.attempts > options_.retry.max_retries) {
    const int attempts = rc.attempts;
    lock.unlock();
    std::ostringstream os;
    os << "recv timed out: comm " << comm_id << " src " << src << " dst "
       << dst << " tag " << tag
       << " (no matching message arrived); gave up after " << attempts
       << " retransmit attempts";
    throw TimeoutError(os.str());
  }
  const std::uint64_t want = rc.expected;
  rc.next_probe = Clock::now() + rc.backoff_next(options_.retry);
  lock.unlock();
  send_rtx_request(comm_id, src, dst, tag, want);
  lock.lock();
  return true;
}

void SocketTransport::on_crc_retry(Mailbox& box, const Key& key,
                                   const Message& msg, std::uint64_t comm_id,
                                   int src, int dst, int tag) {
  obs::count("comm.crc.failures");
  obs::count("comm.retry.crc_retries");
  std::uint64_t want = 0;
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    RecvChannel& rc = box.channels[key].rc;
    rc.expected = msg.seq;
    rc.attempts = msg.prior_attempts + 1;
    rc.backoff_ms = msg.prior_backoff_ms;
    if (rc.attempts > options_.retry.max_retries) {
      std::ostringstream os;
      os << "corrupt message: CRC mismatch on comm " << comm_id << " src "
         << src << " -> dst " << dst << " tag " << tag << " ("
         << bytes_of(msg).size() << " bytes, expected crc " << msg.crc
         << ", got " << crc32(bytes_of(msg)) << "); gave up after "
         << rc.attempts << " retransmit attempts";
      throw CorruptMessageError(os.str());
    }
    want = rc.expected;
    rc.next_probe = Clock::now() + rc.backoff_next(options_.retry);
  }
  send_rtx_request(comm_id, src, dst, tag, want);
}

bool SocketTransport::try_pop(std::uint64_t comm_id, int src, int self,
                              int tag, std::uint64_t /*epoch*/,
                              std::vector<std::byte>& out) {
  Mailbox& box = shards_[static_cast<std::size_t>(hosted_index(self))]->box;
  const Key key{comm_id, src, tag};
  const bool reliable = options_.retry.enabled;
  Message msg;
  Clock::time_point head_ready{};
  std::unique_lock<std::mutex> lock(box.mutex);
  throw_if_poisoned();
  const PopResult pr = pop_channel(box, key, reliable, msg, head_ready);
  if (pr == PopResult::kFound) {
    lock.unlock();
    if (!reliable) {
      verify_crc(msg, comm_id, src, self, tag);
      out = steal_payload(msg);
      return true;
    }
    if (crc_matches(msg)) {
      maybe_ack(comm_id, src, self, tag, msg.seq);
      out = steal_payload(msg);
      return true;
    }
    on_crc_retry(box, key, msg, comm_id, src, self, tag);
    return false;
  }
  if (reliable && (pr == PopResult::kEmpty || pr == PopResult::kGap))
    probe_locked(lock, box, key, comm_id, src, self, tag);
  return false;
}

std::vector<std::byte> SocketTransport::wait_posted(std::uint64_t comm_id,
                                                    int src, int self,
                                                    int tag,
                                                    std::uint64_t /*epoch*/) {
  Mailbox& box = shards_[static_cast<std::size_t>(hosted_index(self))]->box;
  const Key key{comm_id, src, tag};
  const bool reliable = options_.retry.enabled;
  const bool bounded = options_.timeout_s > 0.0;
  Clock::time_point start{};
  Clock::time_point deadline{};

  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    throw_if_poisoned();

    Message msg;
    Clock::time_point head_ready{};
    const PopResult pr = pop_channel(box, key, reliable, msg, head_ready);
    if (pr == PopResult::kFound) {
      lock.unlock();
      if (!reliable) {
        verify_crc(msg, comm_id, src, self, tag);
        return steal_payload(msg);
      }
      if (crc_matches(msg)) {
        maybe_ack(comm_id, src, self, tag, msg.seq);
        return steal_payload(msg);
      }
      on_crc_retry(box, key, msg, comm_id, src, self, tag);
      lock.lock();
      continue;
    }

    if (bounded && deadline == Clock::time_point{}) {
      start = Clock::now();
      deadline = start + timeout_duration();
    }

    Clock::time_point probe_at{};
    if (reliable && pr != PopResult::kNotReady) {
      if (probe_locked(lock, box, key, comm_id, src, self, tag))
        continue;  // a retransmit was just requested; re-check the queue
      probe_at = box.channels[key].rc.next_probe;
    }

    Clock::time_point wake = Clock::time_point::max();
    if (bounded) wake = deadline;
    if (probe_at != Clock::time_point{} && probe_at < wake) wake = probe_at;
    if (head_ready != Clock::time_point{} && head_ready < wake)
      wake = head_ready;

    const std::uint64_t seen = box.version;
    const auto changed = [&] {
      return poisoned_.load() || box.version != seen;
    };
    if (wake == Clock::time_point::max()) {
      box.cv.wait(lock, changed);
    } else {
      box.cv.wait_until(lock, wake, changed);
      if (bounded && !changed() && Clock::now() >= deadline) {
        const int attempts = reliable ? box.channels[key].rc.attempts : 0;
        lock.unlock();
        std::ostringstream os;
        os << "recv timed out: comm " << comm_id << " src " << src << " dst "
           << self << " tag " << tag << " (no matching message arrived)";
        append_retry_context(os, attempts, start);
        throw TimeoutError(os.str());
      }
    }
  }
}

void SocketTransport::send_ack(std::uint64_t comm_id, int src, int self,
                               int tag, std::uint64_t seq) {
  FrameHeader h{};
  h.comm_id = comm_id;
  h.src = self;  // the receiver emits the ack...
  h.dst = src;   // ...to the original sender
  h.tag = tag;
  h.seq = seq;
  obs::blackbox_record(self, obs::BlackboxKind::kAck, src, tag, comm_id, seq);
  route(self, src, make_frame(FrameType::kAck, h, {}));
}

void SocketTransport::maybe_ack(std::uint64_t comm_id, int src, int self,
                                int tag, std::uint64_t seq) {
  constexpr std::uint64_t kAckStride = 32;
  if (seq % kAckStride == 0) send_ack(comm_id, src, self, tag, seq);
}

void SocketTransport::send_rtx_request(std::uint64_t comm_id, int src,
                                       int self, int tag,
                                       std::uint64_t want) {
  FrameHeader h{};
  h.comm_id = comm_id;
  h.src = self;
  h.dst = src;
  h.tag = tag;
  h.seq = want;
  // The requesting receiver records the retransmit too (mirrors the serving
  // side in handle_rtx_request), so a receiver that dies mid-storm still
  // carries its channel's recovery history in its own dump.
  obs::blackbox_record(self, obs::BlackboxKind::kRetransmit, src, tag,
                       comm_id, want);
  route(self, src, make_frame(FrameType::kRtxRequest, h, {}));
}

void SocketTransport::barrier(std::uint64_t comm_id,
                              const std::vector<int>& group, int self,
                              std::uint64_t epoch) {
  throw_if_poisoned();
  const int participants = static_cast<int>(group.size());
  if (participants <= 1) return;
  int idx = -1;
  for (int i = 0; i < participants; ++i) {
    if (group[static_cast<std::size_t>(i)] == self) idx = i;
  }
  BGL_CHECK(idx >= 0);
  // Dissemination barrier over the data path: ceil(log2 P) rounds of one
  // token each. Round tags are reused by consecutive barriers on the same
  // id, which is safe because channels are FIFO: a rank finishing barrier n
  // has already sent all its round tokens for n before it can emit any
  // token for n+1 on the same (comm, src, tag) channel.
  int round = 0;
  for (int step = 1; step < participants; step <<= 1, ++round) {
    const int to = group[static_cast<std::size_t>((idx + step) % participants)];
    const int from = group[static_cast<std::size_t>(
        (idx - step + participants) % participants)];
    post_internal(comm_id, self, to, kBarrierTagBase + round, {});
    (void)wait_posted(comm_id, from, self, kBarrierTagBase + round, epoch);
  }
  throw_if_poisoned();
}

std::vector<std::int64_t> SocketTransport::board_exchange(
    std::uint64_t comm_id, std::uint64_t split_seq,
    const std::vector<int>& group, int self, std::int64_t value,
    std::uint64_t epoch) {
  throw_if_poisoned();
  const std::size_t participants = group.size();
  std::vector<std::int64_t> values(participants, 0);
  int idx = -1;
  for (std::size_t i = 0; i < participants; ++i) {
    if (group[i] == self) idx = static_cast<int>(i);
  }
  BGL_CHECK(idx >= 0);
  values[static_cast<std::size_t>(idx)] = value;
  // Direct all-to-all fan-out of the packed (color, key) value; the tag is
  // salted by the split sequence so consecutive splits stay disambiguated
  // even without the inproc board's bracketing barriers.
  const int tag = kBoardTagBase + static_cast<int>(split_seq & 0x3FF);
  std::byte payload[sizeof value];
  std::memcpy(payload, &value, sizeof value);
  for (std::size_t j = 0; j < participants; ++j) {
    if (static_cast<int>(j) == idx) continue;
    post_internal(comm_id, self, group[j], tag, payload);
  }
  for (std::size_t j = 0; j < participants; ++j) {
    if (static_cast<int>(j) == idx) continue;
    std::vector<std::byte> bytes =
        wait_posted(comm_id, group[j], self, tag, epoch);
    BGL_CHECK(bytes.size() == sizeof(std::int64_t));
    std::memcpy(&values[j], bytes.data(), sizeof(std::int64_t));
  }
  return values;
}

void SocketTransport::poison(int world_rank, const std::string& what) {
  {
    std::lock_guard<std::mutex> lock(poison_mutex_);
    if (first_failed_rank_ < 0) {
      first_failed_rank_ = world_rank;
      poison_what_ = what;
    }
  }
  obs::blackbox_record(world_rank, obs::BlackboxKind::kPoison);
  poisoned_.store(true);
  for (auto& sh : shards_) {
    { std::lock_guard<std::mutex> lock(sh->box.mutex); }
    sh->box.cv.notify_all();
  }
  if (!spmd_) return;  // every rank of the world shares this poison state
  // Tell the peer processes; their blocked ops wake with the poison error.
  FrameHeader h{};
  h.src = world_rank;
  const auto bytes = std::as_bytes(std::span<const char>(what));
  for (auto& c : conns_) {
    h.dst = c->peer;
    enqueue(c.get(), make_frame(FrameType::kPoison, h, bytes));
  }
}

void SocketTransport::throw_if_poisoned() const {
  if (!poisoned_.load()) return;
  std::lock_guard<std::mutex> lock(poison_mutex_);
  throw Error("runtime poisoned: rank " + std::to_string(first_failed_rank_) +
              " raised: " + poison_what_);
}

int SocketTransport::first_failed_rank() const {
  std::lock_guard<std::mutex> lock(poison_mutex_);
  return first_failed_rank_;
}

void SocketTransport::mark_failed(int world_rank) {
  // No tier-3 shrink on this transport: a dead rank takes the world down.
  poison(world_rank, "rank " + std::to_string(world_rank) +
                         " failed (the tcp transport has no in-place shrink; "
                         "use the inproc transport for tier 3)");
}

std::pair<std::uint64_t, std::vector<int>> SocketTransport::rebuild(
    int /*me*/) {
  BGL_FAIL(
      "Communicator::shrink() requires the inproc transport; the tcp "
      "transport has a single fixed epoch (DESIGN.md §12)");
}

void SocketTransport::start_pump() {
  pump_ = std::thread([this] { pump_main(); });
}

void SocketTransport::wake_pump() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void SocketTransport::read_available(Conn* conn) {
  if (conn->closed) return;
  std::byte buf[65536];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->inbuf.insert(conn->inbuf.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      // Clean FIN: every frame the peer sent is already in inbuf, so
      // nothing legitimately expected can be lost — not a poison event
      // (this is the normal teardown order between processes).
      conn->closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->closed = true;
    break;
  }
  // Parse the complete frames accumulated so far.
  for (;;) {
    const std::size_t avail = conn->inbuf.size() - conn->in_offset;
    if (avail < sizeof(FrameHeader)) break;
    FrameHeader h{};
    std::memcpy(&h, conn->inbuf.data() + conn->in_offset, sizeof h);
    BGL_ENSURE(h.magic == kFrameMagic && h.payload_len <= kMaxPayload,
               "corrupted frame stream from rank " << conn->peer);
    const std::size_t need = sizeof h + h.payload_len;
    if (avail < need) break;
    std::vector<std::byte> payload(
        conn->inbuf.begin() +
            static_cast<std::ptrdiff_t>(conn->in_offset + sizeof h),
        conn->inbuf.begin() + static_cast<std::ptrdiff_t>(conn->in_offset + need));
    conn->in_offset += need;
    dispatch(h, std::move(payload));
  }
  if (conn->in_offset == conn->inbuf.size()) {
    conn->inbuf.clear();
    conn->in_offset = 0;
  } else if (conn->in_offset > (64u << 10)) {
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() +
                          static_cast<std::ptrdiff_t>(conn->in_offset));
    conn->in_offset = 0;
  }
}

void SocketTransport::flush_outbound(Conn* conn) {
  std::lock_guard<std::mutex> lock(conn->out_mutex);
  while (!conn->outbound.empty()) {
    const std::vector<std::byte>& front = conn->outbound.front();
    while (conn->out_offset < front.size()) {
      const ssize_t n =
          ::send(conn->fd, front.data() + conn->out_offset,
                 front.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_offset += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      conn->closed = true;
      conn->outbound.clear();
      conn->out_offset = 0;
      return;
    }
    conn->outbound.pop_front();
    conn->out_offset = 0;
  }
}

void SocketTransport::dispatch(const FrameHeader& h,
                               std::vector<std::byte> payload) {
  switch (static_cast<FrameType>(h.type)) {
    case FrameType::kData:
    case FrameType::kTombstone:
      dispatch_data(h, std::move(payload));
      return;
    case FrameType::kRtxRequest:
      handle_rtx_request(h);
      return;
    case FrameType::kAck:
      handle_ack(h);
      return;
    case FrameType::kPoison: {
      {
        std::lock_guard<std::mutex> lock(poison_mutex_);
        if (first_failed_rank_ < 0) {
          first_failed_rank_ = h.src;
          poison_what_.assign(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
        }
      }
      // A remote rank poisoned the world; note it on every locally hosted
      // rank's ring so their dumps show who took the world down.
      for (const int hosted : hosted_)
        obs::blackbox_record(hosted, obs::BlackboxKind::kPoison, h.src);
      poisoned_.store(true);
      for (auto& sh : shards_) {
        { std::lock_guard<std::mutex> lock(sh->box.mutex); }
        sh->box.cv.notify_all();
      }
      return;
    }
    case FrameType::kHello:
      return;  // only meaningful during SPMD setup
  }
  BGL_FAIL("unknown frame type " << static_cast<int>(h.type));
}

void SocketTransport::dispatch_data(const FrameHeader& h,
                                    std::vector<std::byte> payload) {
  Mailbox& box = shards_[static_cast<std::size_t>(hosted_index(h.dst))]->box;
  const Key key{h.comm_id, h.src, h.tag};
  const bool tombstone =
      static_cast<FrameType>(h.type) == FrameType::kTombstone;
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    MailChannel& ch = box.channels[key];
    if (h.seq > ch.sent) ch.sent = h.seq;
    if (!tombstone) {
      Message msg;
      msg.payload = std::move(payload);
      msg.seq = h.seq;
      msg.crc = h.crc;
      msg.checksummed = (h.flags & 1) != 0;
      if (h.delay_s > 0.0)
        msg.ready_at = Clock::now() + seconds_of(h.delay_s);
      ch.queue.push_back(std::move(msg));
    }
    ++box.version;
  }
  box.cv.notify_all();
}

void SocketTransport::handle_rtx_request(const FrameHeader& h) {
  // h.dst is the original sender (hosted here); h.src is the receiver
  // re-requesting frame h.seq of (comm, dst -> src, tag).
  Shard& sh = *shards_[static_cast<std::size_t>(hosted_index(h.dst))];
  std::shared_ptr<std::vector<std::byte>> frame;
  std::uint32_t crc = 0;
  bool checksummed = false;
  {
    std::lock_guard<std::mutex> lock(sh.sender.mutex);
    const auto it = sh.sender.channels.find(SendKey{h.comm_id, h.src, h.tag});
    if (it == sh.sender.channels.end()) return;
    for (const ReplayEntry& e : it->second.replay) {
      if (e.seq != h.seq) continue;
      frame = e.frame;
      crc = e.crc;
      checksummed = e.checksummed;
      break;
    }
  }
  if (frame == nullptr) return;
  obs::count("comm.retry.retransmits");
  // Recorded on the hosted sender's ring: h.dst originally sent seq h.seq
  // to h.src, who is now re-requesting it.
  obs::blackbox_record(h.dst, obs::BlackboxKind::kRetransmit, h.src, h.tag,
                       h.comm_id, h.seq);
  // The retransmit faces the injector again, so a lossy link can drop it
  // again — bounded by the receiver's RetryOptions.max_retries.
  emit(h.comm_id, h.dst, h.src, h.tag, h.seq, *frame, crc, checksummed,
       /*face_injector=*/true);
}

void SocketTransport::handle_ack(const FrameHeader& h) {
  // h.dst is the original sender (hosted here); frames up to h.seq on
  // (comm, dst -> src, tag) arrived intact and leave the replay buffer.
  Shard& sh = *shards_[static_cast<std::size_t>(hosted_index(h.dst))];
  std::lock_guard<std::mutex> lock(sh.sender.mutex);
  const auto it = sh.sender.channels.find(SendKey{h.comm_id, h.src, h.tag});
  if (it == sh.sender.channels.end()) return;
  SendChannel& ch = it->second;
  if (h.seq <= ch.acked) return;
  ch.acked = h.seq;
  while (!ch.replay.empty() && ch.replay.front().seq <= h.seq)
    ch.replay.pop_front();
}

void SocketTransport::pump_main() {
  std::vector<pollfd> fds;
  std::vector<Conn*> fd_conns;
  while (!stopping_.load()) {
    fds.clear();
    fd_conns.clear();
    fds.push_back(pollfd{wake_fd_, POLLIN, 0});
    for (auto& c : conns_) {
      if (c->closed) continue;
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lock(c->out_mutex);
        if (!c->outbound.empty()) events |= POLLOUT;
      }
      fds.push_back(pollfd{c->fd, events, 0});
      fd_conns.push_back(c.get());
    }
    const int pr = ::poll(fds.data(), fds.size(), /*ms=*/100);
    if (pr < 0 && errno != EINTR && errno != EAGAIN) break;
    if (stopping_.load()) break;
    if (fds[0].revents & POLLIN) {
      std::uint64_t drain = 0;
      while (::read(wake_fd_, &drain, sizeof drain) > 0) {
      }
    }
    try {
      for (std::size_t i = 0; i < fd_conns.size(); ++i) {
        const short re = fds[i + 1].revents;
        if (re & POLLOUT) flush_outbound(fd_conns[i]);
        if (re & (POLLIN | POLLHUP | POLLERR)) read_available(fd_conns[i]);
      }
    } catch (const std::exception& e) {
      // A malformed stream or dispatch failure is fatal for the world, but
      // the pump keeps draining so the poison can still travel.
      poison(hosted_.front(), e.what());
    }
  }
  // Final flush: give queued outbound frames (acks, poison notices, the
  // last barrier tokens of a clean SPMD exit) a bounded chance to leave.
  const auto deadline = Clock::now() + std::chrono::milliseconds(200);
  for (;;) {
    bool pending = false;
    for (auto& c : conns_) {
      if (c->closed) continue;
      flush_outbound(c.get());
      std::lock_guard<std::mutex> lock(c->out_mutex);
      pending = pending || !c->outbound.empty();
    }
    if (!pending || Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace bgl::rt::detail
