#include "runtime/fault.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "obs/metrics.hpp"

namespace bgl::rt {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic per-message randomness: a pure function of
/// (seed, src, message index), independent of thread interleaving.
std::uint64_t mix3(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  return mix(mix(seed + 0x9E3779B97F4A7C15ull + a * 0xD1342543DE82EF95ull) ^
             (b * 0x2545F4914F6CDD1Dull));
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(FaultType type) {
  switch (type) {
    case FaultType::kDrop: return "drop";
    case FaultType::kCorrupt: return "corrupt";
    case FaultType::kDelay: return "delay";
    case FaultType::kKill: return "kill";
  }
  return "?";
}

void FaultInjector::on_op(int world_rank) {
  BGL_CHECK(world_rank >= 0 && world_rank < kMaxRanks);
  const std::uint64_t count =
      op_counts_[static_cast<std::size_t>(world_rank)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  if (world_rank == config_.kill_rank && count == config_.kill_at_op) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      events_.push_back({FaultType::kKill, world_rank, -1, 0, count, 0});
    }
    obs::count("comm.fault.killed");
    std::ostringstream os;
    os << "rank " << world_rank << " killed by fault injector at op " << count;
    throw RankFailureError(os.str());
  }
}

FaultAction FaultInjector::on_message(int src, int dst, int tag,
                                      std::vector<std::byte>& payload) {
  BGL_CHECK(src >= 0 && src < kMaxRanks);
  const std::uint64_t index =
      msg_counts_[static_cast<std::size_t>(src)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  const double u = to_unit(mix3(config_.seed, static_cast<std::uint64_t>(src),
                                index));
  const auto record = [&](FaultType type) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back({type, src, dst, tag, index, payload.size()});
  };

  double acc = config_.drop_prob;
  if (u < acc) {
    record(FaultType::kDrop);
    return FaultAction::kDrop;
  }
  acc += config_.corrupt_prob;
  if (u < acc) {
    if (payload.empty()) return FaultAction::kDeliver;  // nothing to flip
    const std::uint64_t bit =
        mix3(config_.seed ^ 0xC2B2AE3D27D4EB4Full,
             static_cast<std::uint64_t>(src), index) %
        (payload.size() * 8);
    payload[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    record(FaultType::kCorrupt);
    return FaultAction::kCorrupt;
  }
  acc += config_.delay_prob;
  if (u < acc) {
    record(FaultType::kDelay);
    return FaultAction::kDelay;
  }
  return FaultAction::kDeliver;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::vector<FaultEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(), [](const FaultEvent& a, const FaultEvent& b) {
    return std::tie(a.src, a.op, a.type) < std::tie(b.src, b.op, b.type);
  });
  return out;
}

bool FaultInjector::heartbeat_muted(int world_rank, double alive_s) const {
  return world_rank == config_.mute_hb_rank &&
         alive_s >= config_.mute_hb_after_s;
}

std::uint64_t FaultInjector::op_count(int world_rank) const {
  if (world_rank < 0 || world_rank >= kMaxRanks) return 0;
  return op_counts_[static_cast<std::size_t>(world_rank)].load(
      std::memory_order_relaxed);
}

}  // namespace bgl::rt
