// Shared receiver/sender channel machinery for transports (DESIGN.md §12).
//
// Both backends — the in-process fabric (comm.cpp) and the loopback-socket
// transport (transport_socket.cpp) — deliver into the same mailbox shape:
// per-destination channel maps keyed by (comm, src, tag), with the tier-1
// reliable-stream state (expected sequence, probe schedule, sent watermark)
// fused into each entry so the hot push/pop critical sections do one lookup
// under the box lock. The backends differ only in how frames travel (direct
// function call vs. TCP frames) and how retransmits/acks are signalled; the
// matching, in-order delivery, duplicate discard, and delay gating logic
// here is common.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/crc32.hpp"
#include "obs/blackbox.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/recovery.hpp"

namespace bgl::rt::detail {

using Clock = std::chrono::steady_clock;

using Key = std::tuple<std::uint64_t, int, int>;      // (comm, src, tag)
using SendKey = std::tuple<std::uint64_t, int, int>;  // (comm, dst, tag)

struct Message {
  /// Reliable-path frames on the inproc fabric are shared with the sender's
  /// replay buffer and stolen on delivery once the ack has pruned the
  /// replay reference; socket-path and legacy-path messages own their bytes
  /// in `payload`.
  std::shared_ptr<std::vector<std::byte>> frame;
  std::vector<std::byte> payload;
  std::uint64_t seq = 0;  // 0 on the legacy (retry-off) path
  std::uint32_t crc = 0;
  bool checksummed = false;
  // Channel recovery state at pop time (the pop advances the channel
  // optimistically before the CRC is checked; a failure restores these).
  int prior_attempts = 0;
  double prior_backoff_ms = 0.0;
  // Epoch (the default) means deliverable immediately; an injected delay
  // sets a future timestamp and the message stays "in flight" until then.
  Clock::time_point ready_at{};
};

/// Receiver-side stream state for one (comm, src, tag) channel: the next
/// expected sequence number plus the bounded-backoff probe schedule used
/// to re-request frames that never arrived.
struct RecvChannel {
  std::uint64_t expected = 1;
  int attempts = 0;
  double backoff_ms = 0.0;  // 0 = schedule not started
  Clock::time_point next_probe{};

  Clock::duration backoff_next(const RetryOptions& retry) {
    if (backoff_ms <= 0.0) backoff_ms = retry.backoff_ms;
    const double ms = backoff_ms;
    backoff_ms = std::min(backoff_ms * 2.0, retry.backoff_max_ms);
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
  }

  void reset() {
    attempts = 0;
    backoff_ms = 0.0;
    next_probe = Clock::time_point{};
  }
};

/// Everything the mailbox tracks for one (comm, src, tag) stream, fused
/// into a single map entry so the hot push/pop critical sections do one
/// lookup under the box lock instead of three (queue + receive state +
/// watermark).
struct MailChannel {
  std::deque<Message> queue;
  /// Reliable-stream receive state (untouched on the legacy path).
  RecvChannel rc;
  /// Highest sequence number the sender has *committed* on this channel —
  /// updated on every reliable delivery AND on every injected drop (the
  /// socket backend publishes drops as tombstone frames). The receiver's
  /// loss probe consults it: expected > watermark means "not sent yet",
  /// expected <= watermark with nothing deliverable is positive evidence
  /// of a loss (retransmit now).
  std::uint64_t sent = 0;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  /// Reliable-path entries persist when drained (their rc/sent state is
  /// the stream's memory); legacy-path entries are erased once empty.
  std::map<Key, MailChannel> channels;
  /// Bumped on every push (and on the rebuild purge) so blocked waiters
  /// can sleep on "anything changed" without spinning on a delayed head.
  std::uint64_t version = 0;
};

/// One unacknowledged frame retained for retransmission.
struct ReplayEntry {
  std::uint64_t seq = 0;
  std::shared_ptr<std::vector<std::byte>> frame;
  std::uint32_t crc = 0;
  bool checksummed = false;
};

struct SendChannel {
  std::uint64_t next_seq = 1;
  std::uint64_t acked = 0;  // cumulative ack watermark
  std::deque<ReplayEntry> replay;
};

/// Send-side replay state for one source rank. Locked separately from the
/// mailboxes (and never while holding a mailbox lock) because acks and
/// retransmit requests arrive from other threads.
struct SenderState {
  std::mutex mutex;
  std::map<SendKey, SendChannel> channels;
};

enum class PopResult { kFound, kNotReady, kEmpty, kGap };

/// Pops the deliverable message for `key` if there is one. Reliable
/// channels deliver strictly in sequence order: stale duplicates are
/// discarded, and a present-but-later frame reports kGap (a loss the
/// probe schedule will re-request). Caller holds box.mutex.
inline PopResult pop_channel(Mailbox& box, const Key& key, bool reliable,
                             Message& out, Clock::time_point& head_ready) {
  const auto it = box.channels.find(key);
  if (it == box.channels.end() || it->second.queue.empty())
    return PopResult::kEmpty;
  std::deque<Message>& q = it->second.queue;
  if (!reliable) {
    Message& head = q.front();
    if (head.ready_at != Clock::time_point{} && head.ready_at > Clock::now()) {
      head_ready = head.ready_at;
      return PopResult::kNotReady;  // still "in flight" under a delay
    }
    out = std::move(head);
    q.pop_front();
    if (q.empty()) box.channels.erase(it);
    return PopResult::kFound;
  }
  RecvChannel& rc = it->second.rc;
  // Fast path: in a fault-free run the head is the expected frame. The
  // channel advances here, under the one lock the pop already holds; a
  // CRC failure discovered after unlock rolls it back.
  if (q.front().seq == rc.expected &&
      q.front().ready_at == Clock::time_point{}) {
    out = std::move(q.front());
    q.pop_front();
    out.prior_attempts = rc.attempts;
    out.prior_backoff_ms = rc.backoff_ms;
    rc.expected = out.seq + 1;
    rc.reset();
    return PopResult::kFound;
  }
  // Slow path: drop duplicates (retransmits that raced the original), then
  // scan for the expected frame, which may sit behind later ones.
  for (auto qi = q.begin(); qi != q.end();) {
    if (qi->seq < rc.expected) {
      obs::count("comm.retry.duplicates");
      obs::blackbox_record(obs::current_rank(), obs::BlackboxKind::kDuplicate,
                           /*peer=*/-1, /*tag=*/0, /*comm=*/0, qi->seq);
      qi = q.erase(qi);
    } else {
      ++qi;
    }
  }
  if (q.empty()) return PopResult::kEmpty;
  for (auto qi = q.begin(); qi != q.end(); ++qi) {
    if (qi->seq != rc.expected) continue;
    if (qi->ready_at != Clock::time_point{} && qi->ready_at > Clock::now()) {
      head_ready = qi->ready_at;
      return PopResult::kNotReady;
    }
    out = std::move(*qi);
    q.erase(qi);
    out.prior_attempts = rc.attempts;
    out.prior_backoff_ms = rc.backoff_ms;
    rc.expected = out.seq + 1;
    rc.reset();
    return PopResult::kFound;
  }
  return PopResult::kGap;
}

/// Moves the payload out of a delivered message, even when a replay buffer
/// still shares the frame. Safe because retransmission is receiver-driven
/// and a receiver never re-requests a sequence number it has already
/// accepted, so the replay's reference to these bytes is dead the moment
/// the pop returns.
inline std::vector<std::byte> steal_payload(Message& msg) {
  if (msg.frame != nullptr) return std::move(*msg.frame);
  return std::move(msg.payload);
}

[[nodiscard]] inline const std::vector<std::byte>& bytes_of(
    const Message& msg) {
  return msg.frame != nullptr ? *msg.frame : msg.payload;
}

[[nodiscard]] inline bool crc_matches(const Message& msg) {
  return !msg.checksummed || crc32(bytes_of(msg)) == msg.crc;
}

/// Legacy-path (retry-off) CRC verification: a mismatch is terminal, raised
/// as the typed CorruptMessageError naming the blocked channel.
inline void verify_crc(const Message& msg, std::uint64_t comm_id, int src,
                       int dst, int tag) {
  if (!msg.checksummed) return;
  const std::uint32_t got = crc32(bytes_of(msg));
  if (got == msg.crc) return;
  obs::count("comm.crc.failures");
  obs::blackbox_record(dst, obs::BlackboxKind::kCrcFail, src, tag, comm_id,
                       msg.seq);
  std::ostringstream os;
  os << "corrupt message: CRC mismatch on comm " << comm_id << " src " << src
     << " -> dst " << dst << " tag " << tag << " (" << bytes_of(msg).size()
     << " bytes, expected crc " << msg.crc << ", got " << got << ")";
  throw CorruptMessageError(os.str());
}

}  // namespace bgl::rt::detail
