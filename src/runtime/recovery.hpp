// Self-healing runtime support: retry policy (tier 1) and heartbeat
// failure detection (tier 2) of the recovery ladder (DESIGN.md §10).
//
// BaGuaLu-scale jobs treat faults as routine, not fatal. The ladder the
// runtime climbs before giving a step back to checkpoint-restart:
//
//   deliver → retry (ack/retransmit, bounded backoff)
//           → suspect (heartbeat φ accumulator: straggler vs dead)
//           → confirm-dead → epoch-bump → in-place shrink
//
// This header holds the pieces that do not need the fabric: the retry and
// heartbeat option structs (installed through rt::WorldOptions), the
// bounded-exponential Backoff schedule, and the HeartbeatMonitor — one
// beater thread per rank (the in-process stand-in for a node-level
// liveness daemon) plus a lazily evaluated φ-style suspicion query.
// Tier 3 (communicator epochs, drain, shrink) lives in runtime/comm.*.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace bgl::rt {

class FaultInjector;  // runtime/fault.hpp

/// Tier 1 — ack/retransmit configuration. When enabled, every point-to-point
/// stream is sequence-numbered, the sender keeps unacknowledged frames in a
/// replay buffer, and a receiver that detects a loss (sequence gap, missing
/// frame past a backoff interval) or a CRC failure requests retransmission
/// instead of raising an error. Attempts are bounded: exhausting max_retries
/// converts back into the typed error (with retry context in what()).
struct RetryOptions {
  /// Master switch. Off by default so the fault-free fabric keeps its
  /// zero-bookkeeping hot path; ElasticTrainer arms it.
  bool enabled = false;
  /// Retransmission attempts per expected frame before the receiver gives
  /// up (BGL_RETRY_MAX).
  int max_retries = 12;
  /// Initial receiver backoff between recovery probes (BGL_RETRY_BACKOFF_MS).
  /// Doubles per probe up to backoff_max_ms.
  double backoff_ms = 0.5;
  double backoff_max_ms = 50.0;
};

/// Defaults from the environment: BGL_RETRY_MAX / BGL_RETRY_BACKOFF_MS; the
/// layer is enabled when either variable is set. Read once per process.
[[nodiscard]] RetryOptions retry_options_from_env();

/// Pure parsing core of retry_options_from_env (testable without touching
/// the process environment). Either argument may be nullptr/empty (= unset).
/// Garbage, trailing junk, negative values, and out-of-range numbers raise
/// bgl::Error naming the offending variable: a half-applied retry policy on
/// a 37M-core job is far worse than a refused launch. Accepted ranges:
/// BGL_RETRY_MAX in [0, 1e6]; BGL_RETRY_BACKOFF_MS in (0, 60000].
[[nodiscard]] RetryOptions parse_retry_options(const char* max_text,
                                               const char* backoff_text);

/// Tier 2 — heartbeat failure detection. Each rank gets a beater thread
/// posting a liveness timestamp every interval_ms; suspicion of a rank is
/// the φ-style ratio (time since last beat) / interval, evaluated lazily at
/// the points that must decide "dead or merely slow" (recv/barrier
/// deadlines). A rank is confirmed dead only when it resigned/failed
/// explicitly or its suspicion crossed phi_threshold without a clean
/// completion — stragglers whose beats still arrive get their deadline
/// extended (up to straggler_grace × timeout_s) and a metric, not a kill.
struct HeartbeatOptions {
  /// Beat period in milliseconds (BGL_HEARTBEAT_MS). 0 disables tier 2
  /// entirely (no beater threads, timeouts behave as in the bare runtime).
  double interval_ms = 0.0;
  /// Suspicion level at which a silent rank is confirmed dead.
  double phi_threshold = 8.0;
  /// A blocked op whose peer is alive (beating or cleanly completed) keeps
  /// waiting past timeout_s, up to straggler_grace × timeout_s total.
  double straggler_grace = 8.0;
};

/// Defaults from the environment: BGL_HEARTBEAT_MS (0/unset = off).
[[nodiscard]] HeartbeatOptions heartbeat_options_from_env();

/// Pure parsing core of heartbeat_options_from_env. nullptr/empty = unset
/// (tier 2 off). Garbage, negatives, NaN, and values above 600000 ms raise
/// bgl::Error; an explicit "0" is a valid off switch.
[[nodiscard]] HeartbeatOptions parse_heartbeat_options(
    const char* interval_text);

/// Bounded exponential backoff schedule: first wait is backoff_ms, each
/// subsequent wait doubles, capped at backoff_max_ms.
class Backoff {
 public:
  explicit Backoff(const RetryOptions& options)
      : next_ms_(options.backoff_ms), max_ms_(options.backoff_max_ms) {}

  /// Current wait, advancing the schedule.
  [[nodiscard]] std::chrono::steady_clock::duration next() {
    const double ms = next_ms_;
    next_ms_ = std::min(next_ms_ * 2.0, max_ms_);
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
  }

 private:
  double next_ms_;
  double max_ms_;
};

/// The tier-2 failure detector for one World. Thread-safe.
///
/// Liveness model: a beater thread per rank posts beats while the rank
/// function runs — a rank that exits (cleanly or by failure) stops beating.
/// A FaultInjector can mute a rank's beater (FaultConfig.mute_hb_rank) to
/// model a partitioned node: alive, still computing, but invisible to the
/// detector — the scenario that forces the suspect → confirm-dead
/// distinction to exist at all.
class HeartbeatMonitor {
 public:
  HeartbeatMonitor(int size, HeartbeatOptions options,
                   FaultInjector* injector);
  ~HeartbeatMonitor();

  [[nodiscard]] bool enabled() const { return options_.interval_ms > 0.0; }
  [[nodiscard]] const HeartbeatOptions& options() const { return options_; }

  /// Rank thread lifecycle, driven by World::run. start() spawns the
  /// beater; stop() joins it, recording whether the rank function returned
  /// cleanly (completed ranks are never suspected).
  void start(int rank);
  void stop(int rank, bool completed);

  /// φ-style suspicion: (seconds since last beat) / beat interval.
  /// 0 while disabled, for completed ranks, and for ranks beating on time.
  [[nodiscard]] double suspicion(int rank) const;

  /// True once `rank` is beyond suspicion: it resigned/failed explicitly
  /// (mark_dead) or its suspicion crossed phi_threshold without a clean
  /// completion.
  [[nodiscard]] bool confirmed_dead(int rank) const;

  /// True when the rank's function returned cleanly.
  [[nodiscard]] bool completed(int rank) const;

  /// Explicit death notice (resignation, injector kill): confirmed_dead
  /// from now on regardless of beats.
  void mark_dead(int rank);

 private:
  using Clock = std::chrono::steady_clock;

  struct PerRank {
    std::atomic<Clock::rep> last_beat{0};
    std::atomic<bool> running{false};
    std::atomic<bool> completed{false};
    std::atomic<bool> dead{false};
    std::thread beater;
    Clock::time_point started{};
  };

  HeartbeatOptions options_;
  FaultInjector* injector_;
  std::vector<std::unique_ptr<PerRank>> ranks_;
};

}  // namespace bgl::rt
