#include "runtime/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>
#include <tuple>

#include "core/crc32.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"

namespace bgl::rt {

namespace {

/// Collective tag bases encode the collective kind in the high bits
/// (collectives/coll.hpp tags::k* = kind << 20), so tag >> 20 classifies
/// traffic without any per-call allocation. Index 0 is plain point-to-point.
constexpr int kNumCommKinds = 8;

constexpr int comm_kind_of(int tag) {
  const int k = tag >> 20;
  return (k >= 0 && k < kNumCommKinds) ? k : 0;
}

constexpr const char* kSendMsgs[kNumCommKinds] = {
    "comm.p2p.send.msgs",           "comm.bcast.send.msgs",
    "comm.gather.send.msgs",        "comm.allgather.send.msgs",
    "comm.reduce_scatter.send.msgs", "comm.allreduce.send.msgs",
    "comm.alltoall.send.msgs",      "comm.alltoallv.send.msgs"};

constexpr const char* kSendBytes[kNumCommKinds] = {
    "comm.p2p.send.bytes",           "comm.bcast.send.bytes",
    "comm.gather.send.bytes",        "comm.allgather.send.bytes",
    "comm.reduce_scatter.send.bytes", "comm.allreduce.send.bytes",
    "comm.alltoall.send.bytes",      "comm.alltoallv.send.bytes"};

constexpr const char* kRecvMsgs[kNumCommKinds] = {
    "comm.p2p.recv.msgs",           "comm.bcast.recv.msgs",
    "comm.gather.recv.msgs",        "comm.allgather.recv.msgs",
    "comm.reduce_scatter.recv.msgs", "comm.allreduce.recv.msgs",
    "comm.alltoall.recv.msgs",      "comm.alltoallv.recv.msgs"};

constexpr const char* kRecvBytes[kNumCommKinds] = {
    "comm.p2p.recv.bytes",           "comm.bcast.recv.bytes",
    "comm.gather.recv.bytes",        "comm.allgather.recv.bytes",
    "comm.reduce_scatter.recv.bytes", "comm.allreduce.recv.bytes",
    "comm.alltoall.recv.bytes",      "comm.alltoallv.recv.bytes"};

constexpr const char* kRecvWait[kNumCommKinds] = {
    "comm.p2p.recv.wait_s",           "comm.bcast.recv.wait_s",
    "comm.gather.recv.wait_s",        "comm.allgather.recv.wait_s",
    "comm.reduce_scatter.recv.wait_s", "comm.allreduce.recv.wait_s",
    "comm.alltoall.recv.wait_s",      "comm.alltoallv.recv.wait_s"};

constexpr const char* kPendingWait[kNumCommKinds] = {
    "comm.p2p.pending.wait_s",           "comm.bcast.pending.wait_s",
    "comm.gather.pending.wait_s",        "comm.allgather.pending.wait_s",
    "comm.reduce_scatter.pending.wait_s", "comm.allreduce.pending.wait_s",
    "comm.alltoall.pending.wait_s",      "comm.alltoallv.pending.wait_s"};

/// Outstanding nonblocking ops posted by this rank thread. Thread-local
/// because ranks are threads (DESIGN.md §1); exported as the
/// comm.pending.depth gauge of the rank's registry.
thread_local int g_pending_depth = 0;

void pending_posted() {
  ++g_pending_depth;
  if (obs::metrics_enabled()) {
    obs::count("comm.pending.posted");
    obs::set_gauge("comm.pending.depth", g_pending_depth);
  }
}

void pending_completed() {
  --g_pending_depth;
  if (obs::metrics_enabled()) {
    obs::count("comm.pending.completed");
    obs::set_gauge("comm.pending.depth", g_pending_depth);
  }
}

}  // namespace

namespace detail {

using Clock = std::chrono::steady_clock;

/// Shared state for one World: per-rank mailboxes, a phased barrier, a
/// rendezvous board used by split(), and poison propagation for errors.
class Fabric {
 public:
  Fabric(int size, WorldOptions options)
      : size_(size), options_(options), boxes_(size), board_(size) {}

  [[nodiscard]] int size() const { return size_; }

  void send(std::uint64_t comm_id, int src_world, int dst_world, int tag,
            std::span<const std::byte> data) {
    if (options_.fault_injector != nullptr)
      options_.fault_injector->on_op(src_world);  // may raise RankFailureError

    Message msg;
    msg.payload.assign(data.begin(), data.end());
    msg.checksummed = options_.checksum_messages;
    if (msg.checksummed) msg.crc = crc32(msg.payload);

    if (options_.fault_injector != nullptr) {
      // The CRC is already attached, so a corrupted payload is detectable.
      switch (options_.fault_injector->on_message(src_world, dst_world, tag,
                                                  msg.payload)) {
        case FaultAction::kDrop:
          obs::count("comm.fault.dropped");
          return;  // vanishes in flight
        case FaultAction::kDelay:
          obs::count("comm.fault.delayed");
          msg.ready_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(
                  options_.fault_injector->config().delay_s));
          break;
        case FaultAction::kCorrupt:
          obs::count("comm.fault.corrupted");
          break;
        case FaultAction::kDeliver:
          break;
      }
    }

    Mailbox& box = boxes_.at(static_cast<std::size_t>(dst_world));
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queues[Key{comm_id, src_world, tag}].push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  /// Fault-injector op accounting for `world_rank` (one blocking recv or
  /// one posted irecv). May raise RankFailureError at the kill point.
  void note_op(int world_rank) {
    if (options_.fault_injector != nullptr)
      options_.fault_injector->on_op(world_rank);
  }

  std::vector<std::byte> recv(std::uint64_t comm_id, int src_world,
                              int self_world, int tag) {
    note_op(self_world);
    return wait_posted(comm_id, src_world, self_world, tag);
  }

  /// Nonblocking matching attempt for a posted receive: pops the head
  /// message of (comm, src, tag) if one is deliverable (present and past
  /// any injected delay). Throws on poison or CRC mismatch.
  bool try_pop(std::uint64_t comm_id, int src_world, int self_world, int tag,
               std::vector<std::byte>& out) {
    Mailbox& box = boxes_.at(static_cast<std::size_t>(self_world));
    const Key key{comm_id, src_world, tag};
    Message msg;
    {
      std::unique_lock<std::mutex> lock(box.mutex);
      throw_if_poisoned();
      const auto it = box.queues.find(key);
      if (it == box.queues.end() || it->second.empty()) return false;
      Message& head = it->second.front();
      if (head.ready_at != Clock::time_point{} && head.ready_at > Clock::now())
        return false;  // still "in flight" under an injected delay
      msg = std::move(head);
      it->second.pop_front();
      if (it->second.empty()) box.queues.erase(it);
    }
    verify_crc(msg, comm_id, src_world, self_world, tag);
    out = std::move(msg.payload);
    return true;
  }

  /// Blocking completion of an already-posted receive (no op accounting —
  /// the post counted). This is the matching loop of the classic recv().
  std::vector<std::byte> wait_posted(std::uint64_t comm_id, int src_world,
                                     int self_world, int tag) {
    Mailbox& box = boxes_.at(static_cast<std::size_t>(self_world));
    const Key key{comm_id, src_world, tag};
    const bool bounded = options_.timeout_s > 0.0;
    // The timeout deadline is materialized only if this call has to wait;
    // the fast path (message already queued) never reads the clock.
    Clock::time_point deadline{};
    const auto deadline_of = [&] {
      if (deadline == Clock::time_point{})
        deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(options_.timeout_s));
      return deadline;
    };

    std::unique_lock<std::mutex> lock(box.mutex);
    const auto queued = [&] {
      if (poisoned_.load()) return true;
      const auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    };
    for (;;) {
      // Phase 1: wait for poison or a queued message.
      if (!queued()) {
        if (bounded) {
          if (!box.cv.wait_until(lock, deadline_of(), queued))
            throw_recv_timeout(comm_id, src_world, self_world, tag);
        } else {
          box.cv.wait(lock, queued);
        }
      }
      throw_if_poisoned();

      // Phase 2: in-order delivery — the head message may still be delayed
      // in flight (fault injection, ready_at set); wait out its latency,
      // not past the deadline. Undelayed messages skip the clock entirely.
      auto it = box.queues.find(key);
      Message& head = it->second.front();
      if (head.ready_at != Clock::time_point{} &&
          head.ready_at > Clock::now()) {
        if (bounded && deadline_of() <= head.ready_at) {
          // Cannot become ready before the deadline; sleep to the deadline
          // (poison may still arrive), then report the timeout.
          box.cv.wait_until(lock, deadline);
          throw_if_poisoned();
          if (Clock::now() >= deadline)
            throw_recv_timeout(comm_id, src_world, self_world, tag);
        } else {
          box.cv.wait_until(lock, head.ready_at);
        }
        continue;
      }
      Message msg = std::move(head);
      it->second.pop_front();
      if (it->second.empty()) box.queues.erase(it);
      lock.unlock();
      verify_crc(msg, comm_id, src_world, self_world, tag);
      return std::move(msg.payload);
    }
  }

  /// Phased sense-reversing barrier over an arbitrary subset of world ranks.
  /// All ranks of the subset must pass the same (comm_id, subset size).
  void barrier(std::uint64_t comm_id, int participants) {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    BarrierState& st = barriers_[comm_id];
    const std::uint64_t my_phase = st.phase;
    if (++st.arrived == participants) {
      st.arrived = 0;
      ++st.phase;
      barrier_cv_.notify_all();
    } else {
      const auto released = [&] {
        return poisoned_.load() || st.phase != my_phase;
      };
      if (options_.timeout_s > 0.0) {
        const auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(options_.timeout_s));
        if (!barrier_cv_.wait_until(lock, deadline, released)) {
          std::ostringstream os;
          os << "barrier timed out after " << options_.timeout_s
             << "s on comm " << comm_id << " (" << st.arrived << " of "
             << participants << " ranks arrived)";
          throw TimeoutError(os.str());
        }
      } else {
        barrier_cv_.wait(lock, released);
      }
    }
    throw_if_poisoned();
  }

  /// Rendezvous board used by split(): rank writes a value, then after a
  /// barrier all ranks read everyone's value. Caller supplies the barrier.
  void board_put(int world_rank, std::int64_t value) {
    std::lock_guard<std::mutex> lock(board_mutex_);
    board_.at(static_cast<std::size_t>(world_rank)) = value;
  }

  [[nodiscard]] std::int64_t board_get(int world_rank) const {
    std::lock_guard<std::mutex> lock(board_mutex_);
    return board_.at(static_cast<std::size_t>(world_rank));
  }

  /// Poisons the world on behalf of `world_rank`, whose error `what` is the
  /// cause. Only the first caller wins; World::run rethrows its exception.
  void poison(int world_rank, const std::string& what) {
    {
      std::lock_guard<std::mutex> lock(poison_mutex_);
      if (first_failed_rank_ < 0) {
        first_failed_rank_ = world_rank;
        poison_what_ = what;
      }
    }
    poisoned_.store(true);
    for (Mailbox& box : boxes_) box.cv.notify_all();
    barrier_cv_.notify_all();
  }

  void throw_if_poisoned() const {
    if (!poisoned_.load()) return;
    std::lock_guard<std::mutex> lock(poison_mutex_);
    throw Error("runtime poisoned: rank " + std::to_string(first_failed_rank_) +
                " raised: " + poison_what_);
  }

  /// Rank whose error poisoned the world, or -1 if no rank failed.
  [[nodiscard]] int first_failed_rank() const {
    std::lock_guard<std::mutex> lock(poison_mutex_);
    return first_failed_rank_;
  }

 private:
  using Key = std::tuple<std::uint64_t, int, int>;  // (comm, src, tag)

  struct Message {
    std::vector<std::byte> payload;
    std::uint32_t crc = 0;
    bool checksummed = false;
    // Epoch (the default) means deliverable immediately; an injected delay
    // sets a future timestamp and the message stays "in flight" until then.
    Clock::time_point ready_at{};
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<Key, std::deque<Message>> queues;
  };

  struct BarrierState {
    int arrived = 0;
    std::uint64_t phase = 0;
  };

  static void verify_crc(const Message& msg, std::uint64_t comm_id, int src,
                         int dst, int tag) {
    if (!msg.checksummed) return;
    const std::uint32_t got = crc32(msg.payload);
    if (got == msg.crc) return;
    obs::count("comm.crc.failures");
    std::ostringstream os;
    os << "corrupt message: CRC mismatch on comm " << comm_id << " src " << src
       << " -> dst " << dst << " tag " << tag << " (" << msg.payload.size()
       << " bytes, expected crc " << msg.crc << ", got " << got << ")";
    throw CorruptMessageError(os.str());
  }

  [[noreturn]] static void throw_recv_timeout(std::uint64_t comm_id, int src,
                                              int dst, int tag) {
    std::ostringstream os;
    os << "recv timed out: comm " << comm_id << " src " << src << " dst "
       << dst << " tag " << tag << " (no matching message arrived)";
    throw TimeoutError(os.str());
  }

  int size_;
  WorldOptions options_;
  std::vector<Mailbox> boxes_;
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  std::map<std::uint64_t, BarrierState> barriers_;
  mutable std::mutex board_mutex_;
  std::vector<std::int64_t> board_;
  std::atomic<bool> poisoned_{false};
  mutable std::mutex poison_mutex_;
  int first_failed_rank_ = -1;
  std::string poison_what_;
};

namespace {

std::uint64_t mix_id(std::uint64_t a, std::uint64_t b) {
  // SplitMix-style combiner; deterministic across ranks.
  std::uint64_t z = a + 0x9E3779B97F4A7C15ull + b * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace
}  // namespace detail

Communicator::Communicator(std::shared_ptr<detail::Fabric> fabric,
                           std::uint64_t comm_id, std::vector<int> group,
                           int rank)
    : fabric_(std::move(fabric)),
      comm_id_(comm_id),
      group_(std::move(group)),
      rank_(rank) {}

void Communicator::send_bytes(int dst, int tag,
                              std::span<const std::byte> data) const {
  BGL_ENSURE(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  if (obs::metrics_enabled()) {
    const int k = comm_kind_of(tag);
    obs::count(kSendMsgs[k]);
    obs::count(kSendBytes[k], static_cast<std::int64_t>(data.size()));
  }
  fabric_->send(comm_id_, world_rank(rank_), world_rank(dst), tag, data);
}

std::vector<std::byte> Communicator::recv_bytes(int src, int tag) const {
  BGL_ENSURE(src >= 0 && src < size(), "recv from invalid rank " << src);
  if (!obs::metrics_enabled())
    return fabric_->recv(comm_id_, world_rank(src), world_rank(rank_), tag);
  const int k = comm_kind_of(tag);
  const auto t0 = detail::Clock::now();
  std::vector<std::byte> payload =
      fabric_->recv(comm_id_, world_rank(src), world_rank(rank_), tag);
  const double wait_s =
      std::chrono::duration<double>(detail::Clock::now() - t0).count();
  obs::count(kRecvMsgs[k]);
  obs::count(kRecvBytes[k], static_cast<std::int64_t>(payload.size()));
  obs::observe(kRecvWait[k], wait_s);
  return payload;
}

/// Shared state of one nonblocking op. Accessed only by the posting rank
/// thread (PendingOp is not a cross-thread handle); the fabric provides the
/// synchronized mailbox access underneath.
struct PendingOp::State {
  std::shared_ptr<detail::Fabric> fabric;
  std::uint64_t comm_id = 0;
  int src_world = -1;   // peer (recv source); -1 for sends
  int self_world = -1;  // mailbox owner
  int tag = 0;
  bool is_recv = false;
  bool done = false;
  std::vector<std::byte> payload;

  void complete(std::vector<std::byte> bytes) {
    payload = std::move(bytes);
    done = true;
    pending_completed();
    if (obs::metrics_enabled() && is_recv) {
      const int k = comm_kind_of(tag);
      obs::count(kRecvMsgs[k]);
      obs::count(kRecvBytes[k], static_cast<std::int64_t>(payload.size()));
    }
  }
};

PendingOp::PendingOp() = default;
PendingOp::PendingOp(PendingOp&&) noexcept = default;
PendingOp& PendingOp::operator=(PendingOp&&) noexcept = default;

PendingOp::~PendingOp() {
  // An abandoned pending op leaves its message (if any) queued; only the
  // outstanding-depth accounting must be unwound.
  if (state_ && !state_->done) pending_completed();
}

bool PendingOp::done() const { return state_ == nullptr || state_->done; }

bool PendingOp::test() {
  if (done()) return true;
  std::vector<std::byte> bytes;
  if (!state_->fabric->try_pop(state_->comm_id, state_->src_world,
                               state_->self_world, state_->tag, bytes))
    return false;
  state_->complete(std::move(bytes));
  return true;
}

void PendingOp::wait() {
  if (done()) return;
  if (!obs::metrics_enabled()) {
    state_->complete(state_->fabric->wait_posted(
        state_->comm_id, state_->src_world, state_->self_world, state_->tag));
    return;
  }
  const auto t0 = detail::Clock::now();
  std::vector<std::byte> bytes = state_->fabric->wait_posted(
      state_->comm_id, state_->src_world, state_->self_world, state_->tag);
  obs::observe(kPendingWait[comm_kind_of(state_->tag)],
               std::chrono::duration<double>(detail::Clock::now() - t0).count());
  state_->complete(std::move(bytes));
}

std::vector<std::byte> PendingOp::take_bytes() {
  wait();
  BGL_ENSURE(state_ != nullptr, "take_bytes on an empty PendingOp");
  BGL_ENSURE(state_->is_recv, "take_bytes on a send operation");
  return std::move(state_->payload);
}

PendingOp Communicator::isend(int dst, int tag,
                              std::span<const std::byte> data) const {
  // The buffered fabric commits the message synchronously, so the handle is
  // born complete; the metrics/CRC/fault path is exactly send_bytes'.
  send_bytes(dst, tag, data);
  PendingOp op;
  op.state_ = std::make_shared<PendingOp::State>();
  op.state_->fabric = fabric_;
  op.state_->comm_id = comm_id_;
  op.state_->self_world = world_rank(rank_);
  op.state_->tag = tag;
  op.state_->done = true;
  return op;
}

PendingOp Communicator::irecv(int src, int tag) const {
  BGL_ENSURE(src >= 0 && src < size(), "irecv from invalid rank " << src);
  fabric_->note_op(world_rank(rank_));  // post counts as one runtime op
  PendingOp op;
  op.state_ = std::make_shared<PendingOp::State>();
  op.state_->fabric = fabric_;
  op.state_->comm_id = comm_id_;
  op.state_->src_world = world_rank(src);
  op.state_->self_world = world_rank(rank_);
  op.state_->tag = tag;
  op.state_->is_recv = true;
  pending_posted();
  return op;
}

void Communicator::barrier() const {
  if (!obs::metrics_enabled()) {
    fabric_->barrier(comm_id_, size());
    return;
  }
  const auto t0 = detail::Clock::now();
  fabric_->barrier(comm_id_, size());
  obs::count("comm.barrier.count");
  obs::observe("comm.barrier.wait_s",
               std::chrono::duration<double>(detail::Clock::now() - t0).count());
}

Communicator Communicator::split(int color, int key) const {
  // Publish (color, key) on the board, then read everyone's entry. Two
  // barriers bracket the board usage so writes and reads cannot race with a
  // subsequent split on the same communicator.
  const std::uint64_t seq = ++split_seq_;
  const std::int64_t packed =
      (static_cast<std::int64_t>(color) << 32) | static_cast<std::uint32_t>(key);
  fabric_->board_put(world_rank(rank_), packed);
  fabric_->barrier(detail::mix_id(comm_id_, seq * 2), size());

  struct Entry {
    int color;
    int key;
    int old_rank;
    int wrank;
  };
  std::vector<Entry> mine;
  for (int r = 0; r < size(); ++r) {
    const std::int64_t v = fabric_->board_get(world_rank(r));
    const int c = static_cast<int>(v >> 32);
    const int k = static_cast<int>(static_cast<std::uint32_t>(v));
    if (c == color) mine.push_back({c, k, r, world_rank(r)});
  }
  fabric_->barrier(detail::mix_id(comm_id_, seq * 2 + 1), size());

  std::stable_sort(mine.begin(), mine.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.old_rank) < std::tie(b.key, b.old_rank);
  });
  std::vector<int> group;
  group.reserve(mine.size());
  int new_rank = -1;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    group.push_back(mine[i].wrank);
    if (mine[i].old_rank == rank_) new_rank = static_cast<int>(i);
  }
  BGL_CHECK(new_rank >= 0);
  const std::uint64_t child_id =
      detail::mix_id(detail::mix_id(comm_id_, seq),
                     static_cast<std::uint64_t>(static_cast<std::uint32_t>(color)) + 1);
  return Communicator(fabric_, child_id, std::move(group), new_rank);
}

void World::run(int size, const RankFn& fn) {
  run(size, WorldOptions{}, fn);
}

void World::run(int size, const WorldOptions& options, const RankFn& fn) {
  BGL_ENSURE(size >= 1, "world size must be >= 1, got " << size);
  auto fabric = std::make_shared<detail::Fabric>(size, options);

  std::vector<int> world_group(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) world_group[static_cast<std::size_t>(r)] = r;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] {
      obs::set_rank(r);  // trace spans from this thread attribute to rank r
      Communicator comm(fabric, /*comm_id=*/1, world_group, r);
      try {
        fn(comm);
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        fabric->poison(r, e.what());
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        fabric->poison(r, "unknown error");
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the poison cause — the chronologically first failure — so e.g.
  // a RankFailureError is not masked by the poisoned-wakeup errors of the
  // ranks it unblocked.
  const int first = fabric->first_failed_rank();
  if (first >= 0 && errors[static_cast<std::size_t>(first)])
    std::rethrow_exception(errors[static_cast<std::size_t>(first)]);
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace bgl::rt
