#include "runtime/comm.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <tuple>

namespace bgl::rt {
namespace detail {

/// Shared state for one World: per-rank mailboxes, a phased barrier, a
/// rendezvous board used by split(), and poison propagation for errors.
class Fabric {
 public:
  explicit Fabric(int size) : size_(size), boxes_(size), board_(size) {}

  [[nodiscard]] int size() const { return size_; }

  void send(std::uint64_t comm_id, int src_world, int dst_world, int tag,
            std::span<const std::byte> data) {
    Mailbox& box = boxes_.at(static_cast<std::size_t>(dst_world));
    std::vector<std::byte> payload(data.begin(), data.end());
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queues[Key{comm_id, src_world, tag}].push_back(std::move(payload));
    }
    box.cv.notify_all();
  }

  std::vector<std::byte> recv(std::uint64_t comm_id, int src_world,
                              int self_world, int tag) {
    Mailbox& box = boxes_.at(static_cast<std::size_t>(self_world));
    std::unique_lock<std::mutex> lock(box.mutex);
    const Key key{comm_id, src_world, tag};
    box.cv.wait(lock, [&] {
      if (poisoned_.load()) return true;
      const auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    });
    throw_if_poisoned();
    auto it = box.queues.find(key);
    std::vector<std::byte> msg = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) box.queues.erase(it);
    return msg;
  }

  /// Phased sense-reversing barrier over an arbitrary subset of world ranks.
  /// All ranks of the subset must pass the same (comm_id, subset size).
  void barrier(std::uint64_t comm_id, int participants) {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    BarrierState& st = barriers_[comm_id];
    const std::uint64_t my_phase = st.phase;
    if (++st.arrived == participants) {
      st.arrived = 0;
      ++st.phase;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock, [&] {
        return poisoned_.load() || st.phase != my_phase;
      });
    }
    throw_if_poisoned();
  }

  /// Rendezvous board used by split(): rank writes a value, then after a
  /// barrier all ranks read everyone's value. Caller supplies the barrier.
  void board_put(int world_rank, std::int64_t value) {
    std::lock_guard<std::mutex> lock(board_mutex_);
    board_.at(static_cast<std::size_t>(world_rank)) = value;
  }

  [[nodiscard]] std::int64_t board_get(int world_rank) const {
    std::lock_guard<std::mutex> lock(board_mutex_);
    return board_.at(static_cast<std::size_t>(world_rank));
  }

  void poison() {
    poisoned_.store(true);
    for (Mailbox& box : boxes_) box.cv.notify_all();
    barrier_cv_.notify_all();
  }

  void throw_if_poisoned() const {
    if (poisoned_.load())
      throw Error("runtime poisoned: another rank raised an error");
  }

 private:
  using Key = std::tuple<std::uint64_t, int, int>;  // (comm, src, tag)

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<Key, std::deque<std::vector<std::byte>>> queues;
  };

  struct BarrierState {
    int arrived = 0;
    std::uint64_t phase = 0;
  };

  int size_;
  std::vector<Mailbox> boxes_;
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  std::map<std::uint64_t, BarrierState> barriers_;
  mutable std::mutex board_mutex_;
  std::vector<std::int64_t> board_;
  std::atomic<bool> poisoned_{false};
};

namespace {

std::uint64_t mix_id(std::uint64_t a, std::uint64_t b) {
  // SplitMix-style combiner; deterministic across ranks.
  std::uint64_t z = a + 0x9E3779B97F4A7C15ull + b * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace
}  // namespace detail

Communicator::Communicator(std::shared_ptr<detail::Fabric> fabric,
                           std::uint64_t comm_id, std::vector<int> group,
                           int rank)
    : fabric_(std::move(fabric)),
      comm_id_(comm_id),
      group_(std::move(group)),
      rank_(rank) {}

void Communicator::send_bytes(int dst, int tag,
                              std::span<const std::byte> data) const {
  BGL_ENSURE(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  fabric_->send(comm_id_, world_rank(rank_), world_rank(dst), tag, data);
}

std::vector<std::byte> Communicator::recv_bytes(int src, int tag) const {
  BGL_ENSURE(src >= 0 && src < size(), "recv from invalid rank " << src);
  return fabric_->recv(comm_id_, world_rank(src), world_rank(rank_), tag);
}

void Communicator::barrier() const {
  fabric_->barrier(comm_id_, size());
}

Communicator Communicator::split(int color, int key) const {
  // Publish (color, key) on the board, then read everyone's entry. Two
  // barriers bracket the board usage so writes and reads cannot race with a
  // subsequent split on the same communicator.
  const std::uint64_t seq = ++split_seq_;
  const std::int64_t packed =
      (static_cast<std::int64_t>(color) << 32) | static_cast<std::uint32_t>(key);
  fabric_->board_put(world_rank(rank_), packed);
  fabric_->barrier(detail::mix_id(comm_id_, seq * 2), size());

  struct Entry {
    int color;
    int key;
    int old_rank;
    int wrank;
  };
  std::vector<Entry> mine;
  for (int r = 0; r < size(); ++r) {
    const std::int64_t v = fabric_->board_get(world_rank(r));
    const int c = static_cast<int>(v >> 32);
    const int k = static_cast<int>(static_cast<std::uint32_t>(v));
    if (c == color) mine.push_back({c, k, r, world_rank(r)});
  }
  fabric_->barrier(detail::mix_id(comm_id_, seq * 2 + 1), size());

  std::stable_sort(mine.begin(), mine.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.old_rank) < std::tie(b.key, b.old_rank);
  });
  std::vector<int> group;
  group.reserve(mine.size());
  int new_rank = -1;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    group.push_back(mine[i].wrank);
    if (mine[i].old_rank == rank_) new_rank = static_cast<int>(i);
  }
  BGL_CHECK(new_rank >= 0);
  const std::uint64_t child_id =
      detail::mix_id(detail::mix_id(comm_id_, seq),
                     static_cast<std::uint64_t>(static_cast<std::uint32_t>(color)) + 1);
  return Communicator(fabric_, child_id, std::move(group), new_rank);
}

void World::run(int size, const RankFn& fn) {
  BGL_ENSURE(size >= 1, "world size must be >= 1, got " << size);
  auto fabric = std::make_shared<detail::Fabric>(size);

  std::vector<int> world_group(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) world_group[static_cast<std::size_t>(r)] = r;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(fabric, /*comm_id=*/1, world_group, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        fabric->poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace bgl::rt
