#include "runtime/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <tuple>
#include <utility>

#include "core/crc32.hpp"
#include "obs/blackbox.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/transport.hpp"
#include "runtime/transport_socket.hpp"

namespace bgl::rt {

namespace {

/// Collective tag bases encode the collective kind in the high bits
/// (collectives/coll.hpp tags::k* = kind << 20), so tag >> 20 classifies
/// traffic without any per-call allocation. Index 0 is plain point-to-point.
constexpr int kNumCommKinds = 8;

constexpr int comm_kind_of(int tag) {
  const int k = tag >> 20;
  return (k >= 0 && k < kNumCommKinds) ? k : 0;
}

constexpr const char* kSendMsgs[kNumCommKinds] = {
    "comm.p2p.send.msgs",           "comm.bcast.send.msgs",
    "comm.gather.send.msgs",        "comm.allgather.send.msgs",
    "comm.reduce_scatter.send.msgs", "comm.allreduce.send.msgs",
    "comm.alltoall.send.msgs",      "comm.alltoallv.send.msgs"};

constexpr const char* kSendBytes[kNumCommKinds] = {
    "comm.p2p.send.bytes",           "comm.bcast.send.bytes",
    "comm.gather.send.bytes",        "comm.allgather.send.bytes",
    "comm.reduce_scatter.send.bytes", "comm.allreduce.send.bytes",
    "comm.alltoall.send.bytes",      "comm.alltoallv.send.bytes"};

constexpr const char* kRecvMsgs[kNumCommKinds] = {
    "comm.p2p.recv.msgs",           "comm.bcast.recv.msgs",
    "comm.gather.recv.msgs",        "comm.allgather.recv.msgs",
    "comm.reduce_scatter.recv.msgs", "comm.allreduce.recv.msgs",
    "comm.alltoall.recv.msgs",      "comm.alltoallv.recv.msgs"};

constexpr const char* kRecvBytes[kNumCommKinds] = {
    "comm.p2p.recv.bytes",           "comm.bcast.recv.bytes",
    "comm.gather.recv.bytes",        "comm.allgather.recv.bytes",
    "comm.reduce_scatter.recv.bytes", "comm.allreduce.recv.bytes",
    "comm.alltoall.recv.bytes",      "comm.alltoallv.recv.bytes"};

constexpr const char* kRecvWait[kNumCommKinds] = {
    "comm.p2p.recv.wait_s",           "comm.bcast.recv.wait_s",
    "comm.gather.recv.wait_s",        "comm.allgather.recv.wait_s",
    "comm.reduce_scatter.recv.wait_s", "comm.allreduce.recv.wait_s",
    "comm.alltoall.recv.wait_s",      "comm.alltoallv.recv.wait_s"};

constexpr const char* kPendingWait[kNumCommKinds] = {
    "comm.p2p.pending.wait_s",           "comm.bcast.pending.wait_s",
    "comm.gather.pending.wait_s",        "comm.allgather.pending.wait_s",
    "comm.reduce_scatter.pending.wait_s", "comm.allreduce.pending.wait_s",
    "comm.alltoall.pending.wait_s",      "comm.alltoallv.pending.wait_s"};

/// Outstanding nonblocking ops posted by this rank thread. Thread-local
/// because ranks are threads (DESIGN.md §1); exported as the
/// comm.pending.depth gauge of the rank's registry.
thread_local int g_pending_depth = 0;

void pending_posted() {
  ++g_pending_depth;
  if (obs::metrics_enabled()) {
    obs::count("comm.pending.posted");
    obs::set_gauge("comm.pending.depth", g_pending_depth);
  }
}

void pending_completed() {
  --g_pending_depth;
  if (obs::metrics_enabled()) {
    obs::count("comm.pending.completed");
    obs::set_gauge("comm.pending.depth", g_pending_depth);
  }
}

}  // namespace

namespace detail {

/// In-process transport backend ("inproc", the default): shared state for
/// one World whose ranks are threads — per-rank mailboxes, a phased
/// barrier, a rendezvous board used by split(), poison propagation for
/// errors, and the three recovery tiers of DESIGN.md §10 — send-side replay
/// buffers with receiver-driven retransmission (tier 1), a heartbeat
/// failure detector consulted at blocking deadlines (tier 2), and
/// rank-death bookkeeping with an epoch-bumping collective rebuild
/// (tier 3). The channel/replay structures live in runtime/mailbox.hpp,
/// shared with the socket backend.
class Fabric final : public Transport {
 public:
  Fabric(int size, WorldOptions options)
      : size_(size),
        options_(options),
        boxes_(static_cast<std::size_t>(size)),
        board_(static_cast<std::size_t>(size)),
        dead_(static_cast<std::size_t>(size)),
        alive_count_(size) {
    senders_.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r)
      senders_.push_back(std::make_unique<SenderState>());
    if (options_.heartbeat.interval_ms > 0.0)
      monitor_ = std::make_unique<HeartbeatMonitor>(
          size, options_.heartbeat, options_.fault_injector);
  }

  [[nodiscard]] int size() const override { return size_; }

  /// Heartbeat lifecycle hooks, driven by World::run around each rank fn.
  void hb_start(int world_rank) override {
    if (monitor_) monitor_->start(world_rank);
  }
  void hb_stop(int world_rank, bool completed) override {
    if (monitor_) monitor_->stop(world_rank, completed);
  }

  void send(std::uint64_t comm_id, int src_world, int dst_world, int tag,
            std::span<const std::byte> data, std::uint64_t epoch) override {
    throw_if_interrupted(epoch);
    if (options_.fault_injector != nullptr)
      options_.fault_injector->on_op(src_world);  // may raise RankFailureError

    if (options_.retry.enabled) {
      // Tier-1 reliable path: the frame goes into this channel's replay
      // buffer *before* it faces the injector, so a dropped or corrupted
      // delivery can always be replayed from the pristine copy. The frame
      // is shared (not copied) between replay and mailbox; the receiver
      // steals it once the ack has pruned the replay reference.
      auto frame = std::make_shared<std::vector<std::byte>>(data.begin(),
                                                            data.end());
      const bool checksummed = options_.checksum_messages;
      const std::uint32_t crc = checksummed ? crc32(*frame) : 0;
      std::uint64_t seq = 0;
      SenderState& s = *senders_[static_cast<std::size_t>(src_world)];
      {
        std::lock_guard<std::mutex> lock(s.mutex);
        SendChannel& ch = s.channels[SendKey{comm_id, dst_world, tag}];
        seq = ch.next_seq++;
        ch.replay.push_back(ReplayEntry{seq, frame, crc, checksummed});
      }
      deliver_frame(comm_id, src_world, dst_world, tag, seq, frame, crc,
                    checksummed);
      return;
    }

    Message msg;
    msg.payload.assign(data.begin(), data.end());
    msg.checksummed = options_.checksum_messages;
    if (msg.checksummed) msg.crc = crc32(msg.payload);

    if (options_.fault_injector != nullptr) {
      // The CRC is already attached, so a corrupted payload is detectable.
      switch (options_.fault_injector->on_message(src_world, dst_world, tag,
                                                  msg.payload)) {
        case FaultAction::kDrop:
          obs::count("comm.fault.dropped");
          obs::blackbox_record(src_world, obs::BlackboxKind::kDrop, dst_world,
                               tag, comm_id);
          return;  // vanishes in flight
        case FaultAction::kDelay:
          obs::count("comm.fault.delayed");
          msg.ready_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(
                  options_.fault_injector->delay_for(msg.payload.size())));
          break;
        case FaultAction::kCorrupt:
          obs::count("comm.fault.corrupted");
          break;
        case FaultAction::kDeliver:
          break;
      }
    }

    push_message(dst_world, Key{comm_id, src_world, tag}, std::move(msg));
  }

  /// Fault-injector op accounting for `world_rank` (one blocking recv or
  /// one posted irecv). May raise RankFailureError at the kill point.
  void note_op(int world_rank) override {
    if (options_.fault_injector != nullptr)
      options_.fault_injector->on_op(world_rank);
  }

  std::vector<std::byte> recv(std::uint64_t comm_id, int src_world,
                              int self_world, int tag,
                              std::uint64_t epoch) override {
    throw_if_interrupted(epoch);
    note_op(self_world);
    return wait_posted(comm_id, src_world, self_world, tag, epoch);
  }

  /// Nonblocking matching attempt for a posted receive: pops the expected
  /// message of (comm, src, tag) if one is deliverable (present and past
  /// any injected delay). On the reliable path a CRC failure or detected
  /// loss requests retransmission and reports "not yet" instead of
  /// throwing; exhausting the retry budget throws the typed error.
  bool try_pop(std::uint64_t comm_id, int src_world, int self_world, int tag,
               std::uint64_t epoch, std::vector<std::byte>& out) override {
    Mailbox& box = boxes_[static_cast<std::size_t>(self_world)];
    const Key key{comm_id, src_world, tag};
    const bool reliable = options_.retry.enabled;
    Message msg;
    Clock::time_point head_ready{};
    std::unique_lock<std::mutex> lock(box.mutex);
    throw_if_poisoned();
    throw_if_interrupted(epoch);
    const PopResult pr = pop_channel(box, key, reliable, msg, head_ready);
    if (pr == PopResult::kFound) {
      lock.unlock();
      if (!reliable) {
        verify_crc(msg, comm_id, src_world, self_world, tag);
        out = steal_payload(msg);
        return true;
      }
      if (crc_matches(msg)) {
        maybe_ack(comm_id, src_world, self_world, tag, msg.seq);
        out = steal_payload(msg);
        return true;
      }
      on_crc_retry(box, key, msg, comm_id, src_world, self_world, tag);
      return false;
    }
    if (reliable && (pr == PopResult::kEmpty || pr == PopResult::kGap))
      probe_locked(lock, box, key, comm_id, src_world, self_world, tag);
    return false;
  }

  /// Blocking completion of an already-posted receive (no op accounting —
  /// the post counted). This is the matching loop of the classic recv(),
  /// extended with the recovery ladder: lost/corrupt frames are re-requested
  /// with bounded backoff (tier 1), an expired deadline consults the failure
  /// detector before deciding straggler-vs-dead (tier 2), and a confirmed
  /// death under shrink_on_death interrupts with EpochInterrupt (tier 3).
  std::vector<std::byte> wait_posted(std::uint64_t comm_id, int src_world,
                                     int self_world, int tag,
                                     std::uint64_t epoch) override {
    Mailbox& box = boxes_[static_cast<std::size_t>(self_world)];
    const Key key{comm_id, src_world, tag};
    const bool reliable = options_.retry.enabled;
    const bool bounded = options_.timeout_s > 0.0;
    // The timeout deadline is materialized only if this call has to wait;
    // the fast path (message already queued) never reads the clock.
    Clock::time_point start{};
    Clock::time_point deadline{};
    int extensions = 0;

    std::unique_lock<std::mutex> lock(box.mutex);
    for (;;) {
      throw_if_poisoned();
      throw_if_interrupted(epoch);

      Message msg;
      Clock::time_point head_ready{};
      const PopResult pr = pop_channel(box, key, reliable, msg, head_ready);
      if (pr == PopResult::kFound) {
        lock.unlock();
        if (!reliable) {
          verify_crc(msg, comm_id, src_world, self_world, tag);
          return steal_payload(msg);
        }
        if (crc_matches(msg)) {
          maybe_ack(comm_id, src_world, self_world, tag, msg.seq);
          return steal_payload(msg);
        }
        on_crc_retry(box, key, msg, comm_id, src_world, self_world, tag);
        lock.lock();
        continue;
      }

      if (bounded && deadline == Clock::time_point{}) {
        start = Clock::now();
        deadline = start + timeout_duration();
      }

      Clock::time_point probe_at{};
      if (reliable && pr != PopResult::kNotReady) {
        if (probe_locked(lock, box, key, comm_id, src_world, self_world, tag))
          continue;  // a retransmit was just requested; re-check the queue
        probe_at = box.channels[key].rc.next_probe;
      }

      Clock::time_point wake = Clock::time_point::max();
      if (bounded) wake = deadline;
      if (probe_at != Clock::time_point{} && probe_at < wake) wake = probe_at;
      if (head_ready != Clock::time_point{} && head_ready < wake)
        wake = head_ready;

      const std::uint64_t seen = box.version;
      const auto changed = [&] {
        if (poisoned_.load()) return true;
        if (interrupted(epoch)) return true;
        return box.version != seen;
      };
      if (wake == Clock::time_point::max()) {
        box.cv.wait(lock, changed);
      } else {
        box.cv.wait_until(lock, wake, changed);
        if (bounded && !changed() && Clock::now() >= deadline) {
          const int attempts =
              reliable ? box.channels[key].rc.attempts : 0;
          lock.unlock();
          // May throw (timeout / epoch interrupt) or grant a straggler
          // extension. Runs unlocked: it can take the shrink lock.
          deadline = recv_deadline_expired(comm_id, src_world, self_world,
                                           tag, extensions, attempts, start,
                                           deadline);
          lock.lock();
        }
      }
    }
  }

  /// Phased sense-reversing barrier over an arbitrary subset of world ranks.
  /// All ranks of the subset must pass the same (comm_id, group).
  void barrier(std::uint64_t comm_id, const std::vector<int>& group,
               int self_world, std::uint64_t epoch) override {
    throw_if_interrupted(epoch);
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    BarrierState& st = barriers_[comm_id];
    const std::uint64_t my_phase = st.phase;
    const int participants = static_cast<int>(group.size());
    if (++st.arrived == participants) {
      st.arrived = 0;
      ++st.phase;
      barrier_cv_.notify_all();
    } else {
      // Poison/interrupt are checked before touching `st`: once this rank
      // has been evicted and the survivors rebuilt, the barrier map may
      // have been purged under us and `st` must not be dereferenced.
      const auto released = [&] {
        if (poisoned_.load() || interrupted(epoch)) return true;
        return st.phase != my_phase;
      };
      if (options_.timeout_s > 0.0) {
        Clock::time_point deadline = Clock::now() + timeout_duration();
        int extensions = 0;
        while (!barrier_cv_.wait_until(lock, deadline, released)) {
          const int arrived = st.arrived;
          lock.unlock();
          deadline = barrier_deadline_expired(comm_id, group, self_world,
                                              arrived, participants,
                                              extensions, deadline);
          lock.lock();
        }
      } else {
        barrier_cv_.wait(lock, released);
      }
    }
    lock.unlock();
    throw_if_poisoned();
    throw_if_interrupted(epoch);
  }

  /// Split rendezvous over the shared board: every rank writes its value,
  /// then after a barrier all ranks read everyone's. Two barriers bracket
  /// the board usage so writes and reads cannot race with a subsequent
  /// split on the same communicator (this is the exact mechanics the
  /// pre-interface split() inlined; the barrier ids are unchanged).
  std::vector<std::int64_t> board_exchange(std::uint64_t comm_id,
                                           std::uint64_t split_seq,
                                           const std::vector<int>& group,
                                           int self_world, std::int64_t value,
                                           std::uint64_t epoch) override {
    board_put(self_world, value);
    barrier(mix_id(comm_id, split_seq * 2), group, self_world, epoch);
    std::vector<std::int64_t> values;
    values.reserve(group.size());
    for (const int wr : group) values.push_back(board_get(wr));
    barrier(mix_id(comm_id, split_seq * 2 + 1), group, self_world, epoch);
    return values;
  }

  /// Poisons the world on behalf of `world_rank`, whose error `what` is the
  /// cause. Only the first caller wins; World::run rethrows its exception.
  void poison(int world_rank, const std::string& what) override {
    {
      std::lock_guard<std::mutex> lock(poison_mutex_);
      if (first_failed_rank_ < 0) {
        first_failed_rank_ = world_rank;
        poison_what_ = what;
      }
    }
    obs::blackbox_record(world_rank, obs::BlackboxKind::kPoison);
    poisoned_.store(true);
    for (Mailbox& box : boxes_) box.cv.notify_all();
    barrier_cv_.notify_all();
    shrink_cv_.notify_all();
  }

  void throw_if_poisoned() const override {
    if (!poisoned_.load()) return;
    std::lock_guard<std::mutex> lock(poison_mutex_);
    throw Error("runtime poisoned: rank " + std::to_string(first_failed_rank_) +
                " raised: " + poison_what_);
  }

  /// Rank whose error poisoned the world, or -1 if no rank failed.
  [[nodiscard]] int first_failed_rank() const override {
    std::lock_guard<std::mutex> lock(poison_mutex_);
    return first_failed_rank_;
  }

  /// --- tier 3: rank death and in-place rebuild ---------------------------

  /// Current world generation; ops stamped with an older epoch raise
  /// EpochInterrupt (stale-traffic rejection).
  [[nodiscard]] std::uint64_t epoch() const override {
    return current_epoch_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool interrupted(std::uint64_t epoch) const {
    if (!options_.shrink_on_death) return false;
    return shrink_pending_.load(std::memory_order_relaxed) ||
           epoch != current_epoch_.load(std::memory_order_relaxed);
  }

  void throw_if_interrupted(std::uint64_t epoch) const override {
    if (!interrupted(epoch)) return;
    std::ostringstream os;
    os << "epoch interrupt: world epoch "
       << current_epoch_.load(std::memory_order_relaxed);
    if (shrink_pending_.load(std::memory_order_relaxed))
      os << " (shrink pending)";
    os << " superseded an op posted in epoch " << epoch
       << "; survivors must shrink()";
    throw EpochInterrupt(os.str());
  }

  /// Records `world_rank` as dead (resignation, injector kill, or confirmed
  /// by the failure detector). Under shrink_on_death this arms the pending
  /// shrink and wakes every blocked op so the survivors can reach shrink().
  void mark_failed(int world_rank) override {
    bool newly = false;
    {
      std::lock_guard<std::mutex> lock(shrink_mutex_);
      std::atomic<bool>& flag = dead_[static_cast<std::size_t>(world_rank)];
      if (!flag.load(std::memory_order_relaxed)) {
        flag.store(true, std::memory_order_relaxed);
        newly = true;
        --alive_count_;
        if (options_.shrink_on_death) {
          shrink_pending_.store(true, std::memory_order_relaxed);
          maybe_complete_rebuild_locked();
        }
      }
    }
    if (!newly) return;
    if (monitor_) monitor_->mark_dead(world_rank);
    obs::count("comm.rank.failed");
    obs::blackbox_record(world_rank, obs::BlackboxKind::kRankDead);
    wake_all();
  }

  [[nodiscard]] bool is_confirmed_dead(int world_rank) const {
    if (dead_[static_cast<std::size_t>(world_rank)].load(
            std::memory_order_relaxed))
      return true;
    return monitor_ != nullptr && monitor_->confirmed_dead(world_rank);
  }

  /// Collective drain-and-rebuild among the survivors: waits until every
  /// live rank has arrived, then (on the last arrival) purges all stale
  /// traffic and per-channel state, bumps the epoch, and snapshots the
  /// survivor list. An evicted rank raises RankFailureError.
  std::pair<std::uint64_t, std::vector<int>> rebuild(int me) override {
    std::unique_lock<std::mutex> lock(shrink_mutex_);
    if (dead_[static_cast<std::size_t>(me)].load(std::memory_order_relaxed)) {
      std::ostringstream os;
      os << "rank " << me
         << " evicted: confirmed dead by the survivors; it cannot rejoin "
            "the shrunken world";
      throw RankFailureError(os.str());
    }
    const std::uint64_t gen = rebuild_gen_;
    ++rebuild_arrived_;
    maybe_complete_rebuild_locked();
    if (rebuild_gen_ == gen) {
      shrink_cv_.wait(lock, [&] {
        return rebuild_gen_ != gen || poisoned_.load();
      });
      if (rebuild_gen_ == gen) throw_if_poisoned();
    }
    return {current_epoch_.load(std::memory_order_relaxed), survivors_};
  }

 private:
  struct BarrierState {
    int arrived = 0;
    std::uint64_t phase = 0;
  };

  Clock::duration timeout_duration() const {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(options_.timeout_s));
  }

  /// Rendezvous board used by board_exchange(): rank writes a value, then
  /// after a barrier all ranks read everyone's value.
  void board_put(int world_rank, std::int64_t value) {
    std::lock_guard<std::mutex> lock(board_mutex_);
    board_.at(static_cast<std::size_t>(world_rank)) = value;
  }

  [[nodiscard]] std::int64_t board_get(int world_rank) const {
    std::lock_guard<std::mutex> lock(board_mutex_);
    return board_.at(static_cast<std::size_t>(world_rank));
  }

  void push_message(int dst_world, const Key& key, Message msg) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dst_world)];
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      MailChannel& ch = box.channels[key];
      if (msg.seq > ch.sent) ch.sent = msg.seq;
      ch.queue.push_back(std::move(msg));
      ++box.version;
    }
    box.cv.notify_all();
  }

  /// Publishes the sent watermark for a reliable frame that was dropped in
  /// flight (it never reaches push_message): the receiver needs the
  /// evidence to tell "lost" from "not sent yet".
  void note_dropped(int dst_world, const Key& key, std::uint64_t seq) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dst_world)];
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      MailChannel& ch = box.channels[key];
      if (seq > ch.sent) ch.sent = seq;
      ++box.version;
    }
    box.cv.notify_all();
  }

  /// Runs one frame (first delivery or retransmit) through the injector and
  /// into the destination mailbox. The replay buffer keeps the pristine
  /// frame, so a drop here is recoverable and a corrupt here flips a bit in
  /// a private copy, never in the replayed bytes.
  void deliver_frame(std::uint64_t comm_id, int src_world, int dst_world,
                     int tag, std::uint64_t seq,
                     const std::shared_ptr<std::vector<std::byte>>& frame,
                     std::uint32_t crc, bool checksummed) {
    Message msg;
    msg.seq = seq;
    msg.crc = crc;
    msg.checksummed = checksummed;
    FaultInjector* injector = options_.fault_injector;
    if (injector != nullptr) {
      std::vector<std::byte>* bytes = nullptr;
      if (injector->config().corrupt_prob > 0.0) {
        // The injector may flip a bit in place; corrupt a private copy so
        // the replay buffer's frame stays pristine for retransmission.
        msg.payload.assign(frame->begin(), frame->end());
        bytes = &msg.payload;
      } else {
        msg.frame = frame;
        bytes = msg.frame.get();
      }
      switch (injector->on_message(src_world, dst_world, tag, *bytes)) {
        case FaultAction::kDrop:
          obs::count("comm.fault.dropped");
          obs::blackbox_record(src_world, obs::BlackboxKind::kDrop, dst_world,
                               tag, comm_id, seq);
          // Vanishes in flight; the replay buffer still has it. The
          // watermark still advances — that is what lets the receiver's
          // probe recognize the loss.
          note_dropped(dst_world, Key{comm_id, src_world, tag}, seq);
          return;
        case FaultAction::kDelay:
          obs::count("comm.fault.delayed");
          msg.ready_at =
              Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     injector->delay_for(bytes->size())));
          break;
        case FaultAction::kCorrupt:
          obs::count("comm.fault.corrupted");
          break;
        case FaultAction::kDeliver:
          break;
      }
    } else {
      msg.frame = frame;
    }
    push_message(dst_world, Key{comm_id, src_world, tag}, std::move(msg));
  }

  /// Acks are cumulative, so the receiver only needs to send one every
  /// kAckStride frames to keep the sender's replay buffer bounded — taking
  /// the sender's lock per message would put a cross-thread contention
  /// point on the clean path (bench_fault_overhead's < 2% budget). The
  /// unpruned entries hold moved-from (empty) frames, so the deferred ack
  /// retains only headers, not payload bytes.
  static constexpr std::uint64_t kAckStride = 32;

  void maybe_ack(std::uint64_t comm_id, int src_world, int dst_world, int tag,
                 std::uint64_t seq) {
    if (seq % kAckStride == 0) ack(comm_id, src_world, dst_world, tag, seq);
  }

  /// Cumulative ack from the receiver: frames up to `seq` arrived intact,
  /// so the sender's replay buffer can drop them.
  void ack(std::uint64_t comm_id, int src_world, int dst_world, int tag,
           std::uint64_t seq) {
    obs::blackbox_record(dst_world, obs::BlackboxKind::kAck, src_world, tag,
                         comm_id, seq);
    SenderState& s = *senders_[static_cast<std::size_t>(src_world)];
    std::lock_guard<std::mutex> lock(s.mutex);
    SendChannel& ch = s.channels[SendKey{comm_id, dst_world, tag}];
    if (seq <= ch.acked) return;
    ch.acked = seq;
    while (!ch.replay.empty() && ch.replay.front().seq <= seq)
      ch.replay.pop_front();
  }

  /// Receiver-driven retransmission of frame `want` on (comm, src, tag).
  /// Returns false when the sender has no such frame (not sent yet, or the
  /// channel does not exist) — which is *not* a retry attempt.
  bool request_retransmit(std::uint64_t comm_id, int src_world, int dst_world,
                          int tag, std::uint64_t want) {
    SenderState& s = *senders_[static_cast<std::size_t>(src_world)];
    std::shared_ptr<std::vector<std::byte>> frame;
    std::uint32_t crc = 0;
    bool checksummed = false;
    {
      std::lock_guard<std::mutex> lock(s.mutex);
      const auto it = s.channels.find(SendKey{comm_id, dst_world, tag});
      if (it == s.channels.end()) return false;
      for (const ReplayEntry& e : it->second.replay) {
        if (e.seq != want) continue;
        frame = e.frame;
        crc = e.crc;
        checksummed = e.checksummed;
        break;
      }
    }
    if (frame == nullptr) return false;
    obs::count("comm.retry.retransmits");
    obs::blackbox_record(dst_world, obs::BlackboxKind::kRetransmit, src_world,
                         tag, comm_id, want);
    // The retransmit faces the injector again (a fresh message index), so a
    // lossy link can drop it again — bounded by RetryOptions.max_retries.
    deliver_frame(comm_id, src_world, dst_world, tag, want, frame, crc,
                  checksummed);
    return true;
  }

  /// Tier-1 CRC recovery: count the failure, charge a retry attempt
  /// (throwing CorruptMessageError with full retry context once the budget
  /// is spent), and re-request the frame. Caller holds no locks. The pop
  /// optimistically advanced the channel past msg.seq; roll it back so the
  /// retransmission is requested (and matched) as the expected frame.
  void on_crc_retry(Mailbox& box, const Key& key, const Message& msg,
                    std::uint64_t comm_id, int src, int dst, int tag) {
    obs::count("comm.crc.failures");
    obs::count("comm.retry.crc_retries");
    obs::blackbox_record(dst, obs::BlackboxKind::kCrcFail, src, tag, comm_id,
                         msg.seq);
    std::uint64_t want = 0;
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      RecvChannel& rc = box.channels[key].rc;
      rc.expected = msg.seq;
      rc.attempts = msg.prior_attempts + 1;
      rc.backoff_ms = msg.prior_backoff_ms;
      if (rc.attempts > options_.retry.max_retries) {
        std::ostringstream os;
        os << "corrupt message: CRC mismatch on comm " << comm_id << " src "
           << src << " -> dst " << dst << " tag " << tag << " ("
           << bytes_of(msg).size() << " bytes, expected crc " << msg.crc
           << ", got " << crc32(bytes_of(msg)) << "); gave up after "
           << rc.attempts << " retransmit attempts"
           << suspicion_suffix(src);
        throw CorruptMessageError(os.str());
      }
      want = rc.expected;
      rc.next_probe = Clock::now() + rc.backoff_next(options_.retry);
    }
    request_retransmit(comm_id, src, dst, tag, want);
  }

  /// Fires the loss-recovery probe for a channel with nothing deliverable —
  /// but only on positive evidence of a loss: the sent watermark proves the
  /// sender committed the expected frame, yet it never arrived. Without
  /// that evidence the receiver just sleeps (the sender's next delivery or
  /// drop bumps the mailbox version and wakes it) — no probe timer, no
  /// traffic on the sender's lock, which is what keeps the armed-but-idle
  /// tier-1 fabric inside its clean-path budget. Fired probes charge one
  /// retry attempt each and are paced by the bounded-exponential backoff.
  /// Returns true when a retransmit was issued (caller should re-check).
  /// Called with `lock` held; may release and re-acquire it.
  bool probe_locked(std::unique_lock<std::mutex>& lock, Mailbox& box,
                    const Key& key, std::uint64_t comm_id, int src, int dst,
                    int tag) {
    MailChannel& ch = box.channels[key];
    RecvChannel& rc = ch.rc;
    if (ch.sent < rc.expected) {
      // Not sent yet: reset the pacing so a real loss later starts fresh.
      rc.next_probe = Clock::time_point{};
      return false;
    }
    const auto now = Clock::now();
    if (rc.next_probe != Clock::time_point{} && now < rc.next_probe)
      return false;
    const std::uint64_t want = rc.expected;
    lock.unlock();
    const bool sent = request_retransmit(comm_id, src, dst, tag, want);
    lock.lock();
    RecvChannel& rc2 = box.channels[key].rc;
    if (sent) {
      ++rc2.attempts;
      if (rc2.attempts > options_.retry.max_retries) {
        const int attempts = rc2.attempts;
        lock.unlock();
        std::ostringstream os;
        os << "recv timed out: comm " << comm_id << " src " << src << " dst "
           << dst << " tag " << tag
           << " (no matching message arrived); gave up after " << attempts
           << " retransmit attempts" << suspicion_suffix(src);
        throw TimeoutError(os.str());
      }
    }
    rc2.next_probe = Clock::now() + rc2.backoff_next(options_.retry);
    return sent;
  }

  [[nodiscard]] std::string suspicion_suffix(int peer) const {
    if (monitor_ == nullptr || !monitor_->enabled()) return "";
    std::ostringstream os;
    os << " (peer suspicion " << monitor_->suspicion(peer) << ")";
    return os.str();
  }

  /// Tier-2 deadline policy for a blocked recv, run unlocked. Either
  /// throws (TimeoutError, or EpochInterrupt under shrink_on_death when the
  /// peer is confirmed dead) or returns an extended deadline for a peer the
  /// detector vouches is merely slow.
  Clock::time_point recv_deadline_expired(std::uint64_t comm_id, int src,
                                          int dst, int tag, int& extensions,
                                          int attempts,
                                          Clock::time_point start,
                                          Clock::time_point deadline) {
    if (is_confirmed_dead(src)) {
      if (options_.shrink_on_death) {
        mark_failed(src);
        std::ostringstream os;
        os << "epoch interrupt: rank " << src
           << " confirmed dead while rank " << dst << " blocked in recv "
           << "(comm " << comm_id << " tag " << tag
           << "); survivors must shrink()";
        throw EpochInterrupt(os.str());
      }
      std::ostringstream os;
      os << "recv timed out: comm " << comm_id << " src " << src << " dst "
         << dst << " tag " << tag
         << " (no matching message arrived); peer confirmed dead"
         << suspicion_suffix(src);
      append_retry_context(os, attempts, start);
      throw TimeoutError(os.str());
    }
    if (monitor_ != nullptr && monitor_->enabled() &&
        extensions < static_cast<int>(options_.heartbeat.straggler_grace)) {
      // The peer is provably alive (still beating, or cleanly done): treat
      // it as a straggler — record, extend, keep waiting.
      ++extensions;
      obs::count("hb.straggler.extensions");
      if (obs::metrics_enabled())
        obs::observe("hb.suspicion", monitor_->suspicion(src));
      obs::blackbox_record(dst, obs::BlackboxKind::kSuspicion, src, tag,
                           comm_id, 0, monitor_->suspicion(src));
      return deadline + timeout_duration();
    }
    std::ostringstream os;
    os << "recv timed out: comm " << comm_id << " src " << src << " dst "
       << dst << " tag " << tag << " (no matching message arrived)";
    if (monitor_ != nullptr && monitor_->enabled())
      os << "; peer rank " << src << " still alive (suspicion "
         << monitor_->suspicion(src) << ", " << extensions
         << " deadline extensions)";
    append_retry_context(os, attempts, start);
    throw TimeoutError(os.str());
  }

  /// Tier-2 deadline policy for a blocked barrier, run unlocked.
  Clock::time_point barrier_deadline_expired(std::uint64_t comm_id,
                                             const std::vector<int>& group,
                                             int self_world, int arrived,
                                             int participants,
                                             int& extensions,
                                             Clock::time_point deadline) {
    for (const int r : group) {
      if (r == self_world || !is_confirmed_dead(r)) continue;
      if (options_.shrink_on_death) {
        mark_failed(r);
        std::ostringstream os;
        os << "epoch interrupt: rank " << r << " confirmed dead while rank "
           << self_world << " blocked in barrier on comm " << comm_id
           << "; survivors must shrink()";
        throw EpochInterrupt(os.str());
      }
      std::ostringstream os;
      os << "barrier timed out after " << options_.timeout_s << "s on comm "
         << comm_id << " (" << arrived << " of " << participants
         << " ranks arrived); rank " << r << " confirmed dead"
         << suspicion_suffix(r);
      throw TimeoutError(os.str());
    }
    if (monitor_ != nullptr && monitor_->enabled() &&
        extensions < static_cast<int>(options_.heartbeat.straggler_grace)) {
      ++extensions;
      obs::count("hb.straggler.extensions");
      return deadline + timeout_duration();
    }
    std::ostringstream os;
    os << "barrier timed out after " << options_.timeout_s << "s on comm "
       << comm_id << " (" << arrived << " of " << participants
       << " ranks arrived)";
    if (monitor_ != nullptr && monitor_->enabled())
      os << "; all absent ranks still alive (" << extensions
         << " deadline extensions)";
    throw TimeoutError(os.str());
  }

  void append_retry_context(std::ostringstream& os, int attempts,
                            Clock::time_point start) const {
    if (!options_.retry.enabled) return;
    os << "; retry layer: " << attempts << " retransmit attempts over "
       << std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count()
       << " ms";
  }

  /// Wakes every blocked op (after a death notice). Each notify is
  /// preceded by briefly taking the matching mutex so a waiter between its
  /// predicate check and its wait cannot miss the wake-up.
  void wake_all() {
    for (Mailbox& box : boxes_) {
      { std::lock_guard<std::mutex> lock(box.mutex); }
      box.cv.notify_all();
    }
    { std::lock_guard<std::mutex> lock(barrier_mutex_); }
    barrier_cv_.notify_all();
    { std::lock_guard<std::mutex> lock(shrink_mutex_); }
    shrink_cv_.notify_all();
  }

  /// Completes the pending rebuild once every live rank has arrived. Holds
  /// shrink_mutex_; takes the box/sender/barrier locks underneath it (that
  /// ordering is global: no code path takes shrink_mutex_ while holding any
  /// of those).
  void maybe_complete_rebuild_locked() {
    if (rebuild_arrived_ == 0 || rebuild_arrived_ < alive_count_) return;
    // Drain the old epoch: stale frames, channel state, and barrier phases
    // all die here, so no epoch-E message can ever match an epoch-E+1 op.
    for (Mailbox& box : boxes_) {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.channels.clear();
      ++box.version;
    }
    for (auto& sender : senders_) {
      std::lock_guard<std::mutex> lock(sender->mutex);
      sender->channels.clear();
    }
    {
      std::lock_guard<std::mutex> lock(barrier_mutex_);
      barriers_.clear();
    }
    survivors_.clear();
    for (int r = 0; r < size_; ++r) {
      if (!dead_[static_cast<std::size_t>(r)].load(std::memory_order_relaxed))
        survivors_.push_back(r);
    }
    const std::uint64_t next =
        current_epoch_.load(std::memory_order_relaxed) + 1;
    current_epoch_.store(next, std::memory_order_relaxed);
    shrink_pending_.store(false, std::memory_order_relaxed);
    rebuild_arrived_ = 0;
    ++rebuild_gen_;
    obs::set_gauge("world.epoch", static_cast<std::int64_t>(next));
    obs::count("comm.world.shrinks");
    obs::blackbox_record(obs::current_rank(), obs::BlackboxKind::kEpochBump,
                         -1, 0, 0, 0, static_cast<double>(next));
    shrink_cv_.notify_all();
  }

  int size_;
  WorldOptions options_;
  std::vector<Mailbox> boxes_;
  std::vector<std::unique_ptr<SenderState>> senders_;
  std::unique_ptr<HeartbeatMonitor> monitor_;
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  std::map<std::uint64_t, BarrierState> barriers_;
  mutable std::mutex board_mutex_;
  std::vector<std::int64_t> board_;
  std::atomic<bool> poisoned_{false};
  mutable std::mutex poison_mutex_;
  int first_failed_rank_ = -1;
  std::string poison_what_;
  // Tier-3 state. dead_ flags are monotonic; alive_count_/rebuild_* are
  // guarded by shrink_mutex_.
  std::vector<std::atomic<bool>> dead_;
  std::mutex shrink_mutex_;
  std::condition_variable shrink_cv_;
  std::atomic<bool> shrink_pending_{false};
  std::atomic<std::uint64_t> current_epoch_{0};
  int alive_count_ = 0;
  int rebuild_arrived_ = 0;
  std::uint64_t rebuild_gen_ = 0;
  std::vector<int> survivors_;
};

}  // namespace detail

namespace {

/// Flow-arrow bookkeeping (DESIGN.md §13): both ends of a FIFO
/// (comm, src, dst, tag) channel count message ordinals independently —
/// the ordinal plays the role of a sequence number even on the legacy
/// (retry-off) path — and hash the channel coordinates plus ordinal into
/// the Chrome flow id that links the send event to its recv across rank
/// traces. thread_local is rank-local: each rank runs on its own thread
/// (or its own process under SPMD), and every send/recv completion of a
/// channel happens on its rank's thread.
std::uint64_t next_flow_id(std::uint64_t comm_id, int src_world,
                           int dst_world, int tag) {
  thread_local std::map<std::tuple<std::uint64_t, int, int, int>,
                        std::uint64_t>
      ordinals;
  const std::uint64_t ordinal =
      ordinals[std::make_tuple(comm_id, src_world, dst_world, tag)]++;
  std::uint64_t id = detail::mix_id(comm_id, 0x9E3779B97F4A7C15ULL);
  id = detail::mix_id(
      id, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_world))
           << 32) |
              static_cast<std::uint32_t>(dst_world));
  id = detail::mix_id(id, static_cast<std::uint32_t>(tag));
  // 53-bit ids survive every double-precision JSON round trip (viewers and
  // the merge tool alike parse numbers as doubles).
  return detail::mix_id(id, ordinal) & ((1ull << 53) - 1);
}

/// Send-side observability for one point-to-point message: Chrome flow
/// "s" endpoint plus a kSend flight-recorder event. `seq` in the blackbox
/// record is the channel flow id so a dump can be joined against the
/// matching kRecv on the peer.
void note_send_obs(std::uint64_t comm_id, int src_world, int dst_world,
                   int tag, std::size_t bytes) {
  if (!obs::tracing_enabled() && !obs::blackbox_enabled()) return;
  const std::uint64_t fid = next_flow_id(comm_id, src_world, dst_world, tag);
  if (obs::tracing_enabled()) obs::flow_send("msg", fid);
  if (obs::blackbox_enabled())
    obs::blackbox_record(src_world, obs::BlackboxKind::kSend, dst_world, tag,
                         comm_id, fid, static_cast<double>(bytes));
}

/// Receive-side mirror of note_send_obs; called from blocking recv and
/// nonblocking completion alike. Channels are FIFO, so completion order
/// equals send order and the independently-counted ordinals line up.
void note_recv_obs(std::uint64_t comm_id, int src_world, int self_world,
                   int tag, std::size_t bytes) {
  if (!obs::tracing_enabled() && !obs::blackbox_enabled()) return;
  const std::uint64_t fid = next_flow_id(comm_id, src_world, self_world, tag);
  if (obs::tracing_enabled()) obs::flow_recv("msg", fid);
  if (obs::blackbox_enabled())
    obs::blackbox_record(self_world, obs::BlackboxKind::kRecv, src_world, tag,
                         comm_id, fid, static_cast<double>(bytes));
}

}  // namespace

Communicator::Communicator(std::shared_ptr<Transport> transport,
                           std::uint64_t comm_id, std::vector<int> group,
                           int rank, std::uint64_t epoch)
    : transport_(std::move(transport)),
      comm_id_(comm_id),
      group_(std::move(group)),
      rank_(rank),
      epoch_(epoch) {}

void Communicator::send_bytes(int dst, int tag,
                              std::span<const std::byte> data) const {
  BGL_ENSURE(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  if (obs::metrics_enabled()) {
    const int k = comm_kind_of(tag);
    obs::count(kSendMsgs[k]);
    obs::count(kSendBytes[k], static_cast<std::int64_t>(data.size()));
  }
  // Recorded BEFORE the transport enqueue: once the message is visible the
  // receiver can stamp its recv immediately, and on a contended core the
  // preempted sender would stamp its send milliseconds later — a backward
  // flow arrow in the merged timeline.
  note_send_obs(comm_id_, world_rank(rank_), world_rank(dst), tag,
                data.size());
  transport_->send(comm_id_, world_rank(rank_), world_rank(dst), tag, data,
                   epoch_);
}

std::vector<std::byte> Communicator::recv_bytes(int src, int tag) const {
  BGL_ENSURE(src >= 0 && src < size(), "recv from invalid rank " << src);
  if (!obs::metrics_enabled()) {
    std::vector<std::byte> payload = transport_->recv(
        comm_id_, world_rank(src), world_rank(rank_), tag, epoch_);
    note_recv_obs(comm_id_, world_rank(src), world_rank(rank_), tag,
                  payload.size());
    return payload;
  }
  const int k = comm_kind_of(tag);
  const auto t0 = detail::Clock::now();
  std::vector<std::byte> payload = transport_->recv(
      comm_id_, world_rank(src), world_rank(rank_), tag, epoch_);
  const double wait_s =
      std::chrono::duration<double>(detail::Clock::now() - t0).count();
  obs::count(kRecvMsgs[k]);
  obs::count(kRecvBytes[k], static_cast<std::int64_t>(payload.size()));
  obs::observe(kRecvWait[k], wait_s);
  note_recv_obs(comm_id_, world_rank(src), world_rank(rank_), tag,
                payload.size());
  return payload;
}

/// Shared state of one nonblocking op. Accessed only by the posting rank
/// thread (PendingOp is not a cross-thread handle); the transport provides
/// the synchronized mailbox access underneath.
struct PendingOp::State {
  std::shared_ptr<Transport> transport;
  std::uint64_t comm_id = 0;
  std::uint64_t epoch = 0;  // epoch the op was posted in
  int src_world = -1;       // peer (recv source); -1 for sends
  int self_world = -1;      // mailbox owner
  int tag = 0;
  bool is_recv = false;
  bool done = false;
  std::vector<std::byte> payload;

  void complete(std::vector<std::byte> bytes) {
    payload = std::move(bytes);
    done = true;
    pending_completed();
    if (is_recv) {
      note_recv_obs(comm_id, src_world, self_world, tag, payload.size());
      if (obs::metrics_enabled()) {
        const int k = comm_kind_of(tag);
        obs::count(kRecvMsgs[k]);
        obs::count(kRecvBytes[k], static_cast<std::int64_t>(payload.size()));
      }
    }
  }
};

PendingOp::PendingOp() = default;
PendingOp::PendingOp(PendingOp&&) noexcept = default;
PendingOp& PendingOp::operator=(PendingOp&&) noexcept = default;

PendingOp::~PendingOp() {
  // An abandoned pending op leaves its message (if any) queued; only the
  // outstanding-depth accounting must be unwound.
  if (state_ && !state_->done) pending_completed();
}

bool PendingOp::done() const { return state_ == nullptr || state_->done; }

bool PendingOp::test() {
  if (done()) return true;
  std::vector<std::byte> bytes;
  if (!state_->transport->try_pop(state_->comm_id, state_->src_world,
                                  state_->self_world, state_->tag,
                                  state_->epoch, bytes))
    return false;
  state_->complete(std::move(bytes));
  return true;
}

void PendingOp::wait() {
  if (done()) return;
  if (!obs::metrics_enabled()) {
    state_->complete(state_->transport->wait_posted(
        state_->comm_id, state_->src_world, state_->self_world, state_->tag,
        state_->epoch));
    return;
  }
  const auto t0 = detail::Clock::now();
  std::vector<std::byte> bytes = state_->transport->wait_posted(
      state_->comm_id, state_->src_world, state_->self_world, state_->tag,
      state_->epoch);
  obs::observe(kPendingWait[comm_kind_of(state_->tag)],
               std::chrono::duration<double>(detail::Clock::now() - t0).count());
  state_->complete(std::move(bytes));
}

std::vector<std::byte> PendingOp::take_bytes() {
  wait();
  BGL_ENSURE(state_ != nullptr, "take_bytes on an empty PendingOp");
  BGL_ENSURE(state_->is_recv, "take_bytes on a send operation");
  return std::move(state_->payload);
}

PendingOp Communicator::isend(int dst, int tag,
                              std::span<const std::byte> data) const {
  // The buffered transport commits the message synchronously, so the handle
  // is born complete; the metrics/CRC/fault path is exactly send_bytes'.
  send_bytes(dst, tag, data);
  PendingOp op;
  op.state_ = std::make_shared<PendingOp::State>();
  op.state_->transport = transport_;
  op.state_->comm_id = comm_id_;
  op.state_->epoch = epoch_;
  op.state_->self_world = world_rank(rank_);
  op.state_->tag = tag;
  op.state_->done = true;
  return op;
}

PendingOp Communicator::irecv(int src, int tag) const {
  BGL_ENSURE(src >= 0 && src < size(), "irecv from invalid rank " << src);
  transport_->throw_if_interrupted(epoch_);
  transport_->note_op(world_rank(rank_));  // post counts as one runtime op
  PendingOp op;
  op.state_ = std::make_shared<PendingOp::State>();
  op.state_->transport = transport_;
  op.state_->comm_id = comm_id_;
  op.state_->epoch = epoch_;
  op.state_->src_world = world_rank(src);
  op.state_->self_world = world_rank(rank_);
  op.state_->tag = tag;
  op.state_->is_recv = true;
  pending_posted();
  return op;
}

void Communicator::barrier() const {
  if (!obs::metrics_enabled()) {
    transport_->barrier(comm_id_, group_, world_rank(rank_), epoch_);
    return;
  }
  const auto t0 = detail::Clock::now();
  transport_->barrier(comm_id_, group_, world_rank(rank_), epoch_);
  obs::count("comm.barrier.count");
  obs::observe("comm.barrier.wait_s",
               std::chrono::duration<double>(detail::Clock::now() - t0).count());
}

Communicator Communicator::split(int color, int key) const {
  // The split sequence number lives transport-side, keyed by (comm_id,
  // world rank): split is collective, so every rank — through any handle
  // of this communicator, copies included — observes the same sequence and
  // derives the same child comm_id.
  const std::uint64_t seq =
      transport_->next_split_seq(comm_id_, world_rank(rank_));
  const std::int64_t packed =
      (static_cast<std::int64_t>(color) << 32) | static_cast<std::uint32_t>(key);
  const std::vector<std::int64_t> board = transport_->board_exchange(
      comm_id_, seq, group_, world_rank(rank_), packed, epoch_);

  struct Entry {
    int color;
    int key;
    int old_rank;
    int wrank;
  };
  std::vector<Entry> mine;
  for (int r = 0; r < size(); ++r) {
    const std::int64_t v = board[static_cast<std::size_t>(r)];
    const int c = static_cast<int>(v >> 32);
    const int k = static_cast<int>(static_cast<std::uint32_t>(v));
    if (c == color) mine.push_back({c, k, r, world_rank(r)});
  }

  std::stable_sort(mine.begin(), mine.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.old_rank) < std::tie(b.key, b.old_rank);
  });
  std::vector<int> group;
  group.reserve(mine.size());
  int new_rank = -1;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    group.push_back(mine[i].wrank);
    if (mine[i].old_rank == rank_) new_rank = static_cast<int>(i);
  }
  BGL_CHECK(new_rank >= 0);
  const std::uint64_t child_id =
      detail::mix_id(detail::mix_id(comm_id_, seq),
                     static_cast<std::uint64_t>(static_cast<std::uint32_t>(color)) + 1);
  return Communicator(transport_, child_id, std::move(group), new_rank, epoch_);
}

void Communicator::resign() const {
  transport_->mark_failed(world_rank(rank_));
}

Communicator Communicator::shrink() const {
  auto [epoch, survivors] = transport_->rebuild(world_rank(rank_));
  const int me = world_rank(rank_);
  int new_rank = -1;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    if (survivors[i] == me) new_rank = static_cast<int>(i);
  }
  BGL_CHECK(new_rank >= 0);
  // The rebuilt world id folds in the epoch, so even a comm id collision
  // across epochs cannot let stale traffic match (the mailboxes were purged
  // anyway — this is defense in depth).
  return Communicator(transport_, detail::mix_id(1, epoch),
                      std::move(survivors), new_rank, epoch);
}

void World::run(int size, const RankFn& fn) {
  run(size, WorldOptions{}, fn);
}

namespace {

/// Barrier id for the SPMD clean-exit fence (below); salted away from the
/// world communicator's id so it shares no phase counter with app barriers.
constexpr std::uint64_t kSpmdExitFence = 0x5D0F3ACEull;

/// World-setup clock sync (DESIGN.md §13). Every rank estimates the offset
/// from its trace clock to rank 0's with ping-style exchanges over the
/// transport seam, so it works identically on both backends: the peer
/// stamps t1, pings rank 0, rank 0 replies with its own obs::now_us(), the
/// peer stamps t2 and — for the minimum-RTT round, where the symmetric-path
/// assumption is tightest — keeps offset = t_ref + rtt/2 - t2. Adding that
/// offset to a local timestamp lands it on rank 0's axis; trace metadata
/// carries it as clockOffsetUs for obs::merge_traces. Offsets are only
/// materially nonzero under SPMD (each process anchors now_us()
/// independently); thread mode measures ~0, which is equally correct.
///
/// Gated on tracing: the sync messages pass through the fault injector's
/// per-rank op counter, and chaos tests that kill at a fixed op count run
/// with tracing off — their op sequence must not shift.
constexpr std::uint64_t kClockSyncComm = 0xC1C0FF5E70ull;
constexpr int kClockSyncReqTag = 0x7C << 20;
constexpr int kClockSyncRepTag = (0x7C << 20) + 1;
constexpr int kClockSyncRounds = 8;

void sync_clocks(Transport& t, int rank, int size) {
  if (!obs::tracing_enabled() || size <= 1) return;
  if (rank == 0) {
    obs::set_clock_offset_us(0, 0);
    for (int peer = 1; peer < size; ++peer) {
      for (int round = 0; round < kClockSyncRounds; ++round) {
        (void)t.recv(kClockSyncComm, peer, 0, kClockSyncReqTag, /*epoch=*/0);
        const std::int64_t ref = obs::now_us();
        t.send(kClockSyncComm, 0, peer, kClockSyncRepTag,
               std::as_bytes(std::span(&ref, 1)), /*epoch=*/0);
      }
    }
    return;
  }
  std::int64_t best_rtt = std::numeric_limits<std::int64_t>::max();
  std::int64_t best_off = 0;
  for (int round = 0; round < kClockSyncRounds; ++round) {
    const std::int64_t t1 = obs::now_us();
    const std::int64_t ping = 0;  // non-empty payload; content unused
    t.send(kClockSyncComm, rank, 0, kClockSyncReqTag,
           std::as_bytes(std::span(&ping, 1)), /*epoch=*/0);
    const std::vector<std::byte> reply =
        t.recv(kClockSyncComm, 0, rank, kClockSyncRepTag, /*epoch=*/0);
    const std::int64_t t2 = obs::now_us();
    std::int64_t ref = 0;
    BGL_ENSURE(reply.size() == sizeof(ref), "clock-sync reply truncated");
    std::memcpy(&ref, reply.data(), sizeof(ref));
    const std::int64_t rtt = t2 - t1;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best_off = ref + rtt / 2 - t2;
    }
  }
  obs::set_clock_offset_us(rank, best_off);
  obs::blackbox_record(rank, obs::BlackboxKind::kClockSync, /*peer=*/0,
                       /*tag=*/0, /*comm=*/kClockSyncComm, /*seq=*/0,
                       static_cast<double>(best_off));
}

}  // namespace

/// Thread-mode driver, shared by every transport backend: spawns one thread
/// per rank, runs fn(comm) on each, joins, and rethrows the poison cause.
void World::run_threads(const std::shared_ptr<Transport>& transport, int size,
                        const WorldOptions& options, const World::RankFn& fn) {
  std::vector<int> world_group(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) world_group[static_cast<std::size_t>(r)] = r;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] {
      obs::set_rank(r);  // trace spans from this thread attribute to rank r
      transport->hb_start(r);
      Communicator comm(transport, /*comm_id=*/1, world_group, r,
                        /*epoch=*/0);
      bool completed = false;
      try {
        // Inside the try: an injected fault can fire during the sync ops.
        sync_clocks(*transport, r, size);
        fn(comm);
        completed = true;
      } catch (const RankFailureError& e) {
        obs::blackbox_dump(r, e.what());
        if (options.shrink_on_death) {
          // Tier 3: the rank dies in place. Survivors get EpochInterrupt
          // and shrink around it; the world is not poisoned and World::run
          // does not rethrow — the job outcome belongs to the survivors.
          transport->mark_failed(r);
        } else {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          transport->poison(r, e.what());
        }
      } catch (const std::exception& e) {
        obs::blackbox_dump(r, e.what());
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        transport->poison(r, e.what());
      } catch (...) {
        obs::blackbox_dump(r, "unknown error");
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        transport->poison(r, "unknown error");
      }
      transport->hb_stop(r, completed);
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the poison cause — the chronologically first failure — so e.g.
  // a RankFailureError is not masked by the poisoned-wakeup errors of the
  // ranks it unblocked.
  const int first = transport->first_failed_rank();
  std::exception_ptr cause;
  if (first >= 0 && errors[static_cast<std::size_t>(first)])
    cause = errors[static_cast<std::size_t>(first)];
  if (!cause) {
    for (const auto& err : errors) {
      if (err) {
        cause = err;
        break;
      }
    }
  }
  if (cause) {
    // The run is about to unwind into caller error handling (often a long-
    // lived test process that never exits) — persist what the failed world
    // buffered now rather than relying on atexit (ISSUE 9 satellite: no
    // trace loss on abnormal exit).
    obs::flush_trace();
    obs::flush_telemetry();
    std::rethrow_exception(cause);
  }
}

/// SPMD driver: this OS process hosts exactly one rank (BGL_RANK) of a
/// BGL_WORLD_SIZE-process world over the socket transport. fn runs on the
/// calling thread; a clean exit fences on a world barrier so no peer tears
/// its sockets down while our last sends are still undelivered.
void World::run_spmd(int size, const WorldOptions& options,
                     const World::RankFn& fn) {
  const SpmdConfig cfg = spmd_config_from_env();
  BGL_ENSURE(size == cfg.world_size,
             "World::run(size=" << size << ") under the SPMD launcher must "
             "match BGL_WORLD_SIZE=" << cfg.world_size);
  auto transport =
      std::make_shared<detail::SocketTransport>(size, options, cfg);
  std::vector<int> world_group(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) world_group[static_cast<std::size_t>(r)] = r;
  obs::set_rank(cfg.rank);
  Communicator comm(transport, /*comm_id=*/1, world_group, cfg.rank,
                    /*epoch=*/0);
  try {
    sync_clocks(*transport, cfg.rank, size);
    fn(comm);
  } catch (const std::exception& e) {
    // Poison travels to the peers as a frame; this process fails with the
    // original error (the launcher aggregates exit codes). Persist this
    // process's observability state before unwinding: the atexit hooks
    // would also fire, but a launcher-side kill can beat them to it.
    obs::blackbox_dump(cfg.rank, e.what());
    obs::flush_trace();
    obs::flush_telemetry();
    transport->poison(cfg.rank, e.what());
    throw;
  } catch (...) {
    obs::blackbox_dump(cfg.rank, "unknown error");
    obs::flush_trace();
    obs::flush_telemetry();
    transport->poison(cfg.rank, "unknown error");
    throw;
  }
  transport->barrier(kSpmdExitFence, world_group, cfg.rank, /*epoch=*/0);
}

void World::run(int size, const WorldOptions& options, const RankFn& fn) {
  BGL_ENSURE(size >= 1, "world size must be >= 1, got " << size);
  const std::string name = resolve_transport_name(options.transport);
  if (name == "tcp") {
    if (spmd_env_configured()) {
      run_spmd(size, options, fn);
      return;
    }
    // Thread mode over real sockets: ranks are still threads of this
    // process, but every message crosses a loopback TCP connection — the
    // whole test suite exercises the wire path this way.
    run_threads(std::make_shared<detail::SocketTransport>(size, options),
                size, options, fn);
    return;
  }
  run_threads(std::make_shared<detail::Fabric>(size, options), size, options,
              fn);
}

}  // namespace bgl::rt
