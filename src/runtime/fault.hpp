// Deterministic fault injection for the in-process runtime.
//
// At BaGuaLu's scale (96,000 nodes / 37.44M cores) node failures and link
// corruption are routine, so the simulator must be able to produce them on
// demand. A FaultInjector is installed on the world fabric through
// rt::WorldOptions and consulted on every send/recv:
//
//  * message faults — drop the message, delay its delivery, or flip one
//    payload bit (which per-message CRC framing then detects);
//  * rank faults — kill a chosen world rank when its cumulative send/recv
//    count reaches a chosen value, raising RankFailureError on that rank.
//
// Every decision derives from hash(seed, source rank, that source's message
// counter), so the fault schedule is a pure function of the seed and each
// rank's (deterministic) communication sequence: the same seed replays the
// same faults regardless of thread interleaving. All injected faults are
// recorded in a structured event log for assertions and post-mortems.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/comm.hpp"

namespace bgl::rt {

/// What the injector decided to do with one in-flight message.
enum class FaultAction { kDeliver, kDrop, kCorrupt, kDelay };

/// Categories recorded in the fault-event log.
enum class FaultType { kDrop, kCorrupt, kDelay, kKill };

[[nodiscard]] const char* to_string(FaultType type);

/// Probabilities are per message and mutually exclusive (at most one fault
/// per message; drop wins over corrupt wins over delay).
struct FaultConfig {
  std::uint64_t seed = 0;
  double drop_prob = 0.0;     // message vanishes in flight
  double corrupt_prob = 0.0;  // one payload bit is flipped
  double delay_prob = 0.0;    // delivery is deferred by delay_s
  double delay_s = 0.0;
  /// Extra deferral per payload byte (emulated link bandwidth; 0 keeps the
  /// fixed-latency behavior). The compression benches set this so wire-byte
  /// reductions translate into measurable step-time wins.
  double delay_per_byte_s = 0.0;
  int kill_rank = -1;            // world rank to kill (-1 = never)
  std::uint64_t kill_at_op = 0;  // 1-based send/recv count on kill_rank
  /// Partition fault: mute_hb_rank's heartbeats stop arriving once it has
  /// been alive for mute_hb_after_s seconds, while the rank itself keeps
  /// running — the node is alive but invisible to the failure detector
  /// (runtime/recovery.hpp). -1 = never.
  int mute_hb_rank = -1;
  double mute_hb_after_s = 0.0;
};

/// One injected fault. `op` is the source rank's message counter for
/// message faults, or the killed rank's send/recv op counter for kKill.
struct FaultEvent {
  FaultType type = FaultType::kDrop;
  int src = -1;
  int dst = -1;
  int tag = 0;
  std::uint64_t op = 0;
  std::size_t bytes = 0;
};

/// Thread-safe; one instance serves every rank of a World. The same
/// injector must not be shared by two concurrently running Worlds.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config) : config_(config) {}

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Deferral applied to a delayed message of `bytes` payload bytes:
  /// delay_s plus the emulated serialization time delay_per_byte_s * bytes.
  [[nodiscard]] double delay_for(std::size_t bytes) const {
    return config_.delay_s +
           config_.delay_per_byte_s * static_cast<double>(bytes);
  }

  /// Called by the fabric at the start of every send/recv on `world_rank`.
  /// Throws RankFailureError when the configured kill point is reached.
  void on_op(int world_rank);

  /// Decides the fate of one outgoing message; kCorrupt flips one bit of
  /// `payload` in place (after the CRC was attached, so receivers detect it).
  [[nodiscard]] FaultAction on_message(int src, int dst, int tag,
                                       std::vector<std::byte>& payload);

  /// Snapshot of the fault log, sorted by (src, op, type) so equal fault
  /// schedules compare equal regardless of thread interleaving.
  [[nodiscard]] std::vector<FaultEvent> events() const;

  /// Number of send/recv ops observed so far on `world_rank`.
  [[nodiscard]] std::uint64_t op_count(int world_rank) const;

  /// True when `world_rank`'s heartbeat is suppressed (partition fault):
  /// the rank has been alive for `alive_s` seconds and the configured mute
  /// point has passed. Consulted by the HeartbeatMonitor beater.
  [[nodiscard]] bool heartbeat_muted(int world_rank, double alive_s) const;

 private:
  /// Upper bound on world ranks one injector can observe. Counters are
  /// flat atomics so a passive injector costs two uncontended increments
  /// per op on the hot path, not a mutex'd map lookup.
  static constexpr int kMaxRanks = 4096;

  FaultConfig config_;
  mutable std::mutex mutex_;  // guards events_ only (faults are rare)
  std::array<std::atomic<std::uint64_t>, kMaxRanks> op_counts_{};
  std::array<std::atomic<std::uint64_t>, kMaxRanks> msg_counts_{};
  std::vector<FaultEvent> events_;
};

}  // namespace bgl::rt
