#include "runtime/transport.hpp"

#include <cerrno>
#include <cstdlib>

#include "core/error.hpp"

namespace bgl::rt {

std::uint64_t Transport::next_split_seq(std::uint64_t comm_id,
                                        int world_rank) {
  std::lock_guard<std::mutex> lock(split_mutex_);
  return ++split_seqs_[{comm_id, world_rank}];
}

namespace detail {

std::uint64_t mix_id(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9E3779B97F4A7C15ull + b * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace detail

namespace {

/// Strict integer env parse: the whole string must be a number in
/// [lo, hi]. Garbage, sign surprises, and overflow all fail loudly — a
/// launcher typo must never silently become a wrong world.
long parse_env_long(const char* name, const char* text, long lo, long hi) {
  BGL_ENSURE(text != nullptr && *text != '\0',
             "environment variable " << name << " must be set");
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  BGL_ENSURE(errno != ERANGE, name << "='" << text << "' overflows");
  BGL_ENSURE(end != text && *end == '\0',
             name << "='" << text << "' is not an integer");
  BGL_ENSURE(v >= lo && v <= hi, name << "=" << v << " out of range ["
                                      << lo << ", " << hi << "]");
  return v;
}

}  // namespace

std::string resolve_transport_name(const std::string& requested) {
  std::string name = requested;
  if (name.empty()) {
    const char* env = std::getenv("BGL_TRANSPORT");
    name = (env != nullptr) ? env : "";
  }
  if (name.empty() || name == "inproc") return "inproc";
  if (name == "tcp") return "tcp";
  BGL_FAIL("unknown transport '" << name
                                 << "' (BGL_TRANSPORT / WorldOptions."
                                    "transport); supported: inproc, tcp");
}

bool spmd_env_configured() {
  const char* rank = std::getenv("BGL_RANK");
  const char* world = std::getenv("BGL_WORLD_SIZE");
  return rank != nullptr && *rank != '\0' && world != nullptr && *world != '\0';
}

SpmdConfig spmd_config_from_env() {
  SpmdConfig cfg;
  cfg.world_size = static_cast<int>(
      parse_env_long("BGL_WORLD_SIZE", std::getenv("BGL_WORLD_SIZE"), 1, 4096));
  cfg.rank = static_cast<int>(parse_env_long("BGL_RANK", std::getenv("BGL_RANK"),
                                             0, cfg.world_size - 1));
  const char* dir = std::getenv("BGL_TCP_DIR");
  BGL_ENSURE(dir != nullptr && *dir != '\0',
             "SPMD launch needs BGL_TCP_DIR (port-file rendezvous directory); "
             "use scripts/bgl_launch.sh");
  cfg.rendezvous_dir = dir;
  return cfg;
}

}  // namespace bgl::rt
