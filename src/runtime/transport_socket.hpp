// Loopback-TCP transport backend ("tcp", DESIGN.md §12).
//
// Every message crosses a real socket as a length-prefixed frame, so the
// runtime's wire behavior — framing, partial reads, buffering, teardown —
// is exercised for real. Two hosting modes share the implementation:
//
//   * thread mode (default): one SocketTransport hosts all ranks of the
//     World as threads, exactly like the inproc fabric, but each rank pair
//     is connected by a loopback TCP connection and all traffic crosses it.
//     This is what lets the whole test suite run against the wire path.
//   * SPMD mode (BGL_RANK/BGL_WORLD_SIZE set, scripts/bgl_launch.sh): the
//     process hosts exactly one rank; peers are other OS processes,
//     rendezvousing through port files in BGL_TCP_DIR.
//
// The mailbox/replay machinery is shared with the inproc fabric
// (runtime/mailbox.hpp): the tier-1 recovery protocol is identical, with
// acks and retransmit requests travelling as control frames instead of
// direct function calls, and injected drops published as tombstone frames
// so the receiver's watermark probe keeps its loss evidence. Tiers 2 and 3
// (heartbeats, in-place shrink) are inproc-only: epoch() is pinned to 0,
// mark_failed() degrades to poison, and rebuild() throws.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/comm.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/transport.hpp"

namespace bgl::rt::detail {

/// Tag bases reserved for transport-internal traffic. Application tags stay
/// under 8 << 20 (collective kinds in collectives/coll.hpp, async salt
/// windows in collectives/async.hpp), so these can never collide.
constexpr int kBarrierTagBase = 0x7E << 20;
constexpr int kBoardTagBase = 0x7F << 20;

/// On-wire frame header; 56 bytes, naturally aligned, host byte order (the
/// transport spans one machine's loopback, never heterogeneous hosts).
struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint8_t type = 0;
  std::uint8_t flags = 0;  // bit 0: payload is CRC-checksummed
  std::uint16_t reserved = 0;
  std::int32_t tag = 0;
  std::int32_t src = 0;  // emitting world rank
  std::int32_t dst = 0;  // addressed world rank
  std::uint32_t crc = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t reserved2 = 0;
  std::uint64_t comm_id = 0;
  std::uint64_t seq = 0;     // reliable stream sequence; 0 on the legacy path
  double delay_s = 0.0;      // injected in-flight delay, stamped by receiver
};
static_assert(sizeof(FrameHeader) == 56);

enum class FrameType : std::uint8_t {
  kHello = 1,       // SPMD connection handshake (identifies the connector)
  kData = 2,        // application payload
  kTombstone = 3,   // a reliable frame the injector dropped: watermark only
  kRtxRequest = 4,  // receiver-driven retransmit request for header.seq
  kAck = 5,         // cumulative ack up to header.seq
  kPoison = 6,      // world poison notice; payload = the error string
};

class SocketTransport final : public Transport {
 public:
  /// Thread mode: hosts all `size` ranks; builds the full loopback mesh.
  SocketTransport(int size, const WorldOptions& options);
  /// SPMD mode: hosts exactly cfg.rank; rendezvouses with the peer
  /// processes through port files in cfg.rendezvous_dir.
  SocketTransport(int size, const WorldOptions& options,
                  const SpmdConfig& cfg);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] int size() const override { return size_; }

  void send(std::uint64_t comm_id, int src, int dst, int tag,
            std::span<const std::byte> data, std::uint64_t epoch) override;
  std::vector<std::byte> recv(std::uint64_t comm_id, int src, int self,
                              int tag, std::uint64_t epoch) override;
  bool try_pop(std::uint64_t comm_id, int src, int self, int tag,
               std::uint64_t epoch, std::vector<std::byte>& out) override;
  std::vector<std::byte> wait_posted(std::uint64_t comm_id, int src, int self,
                                     int tag, std::uint64_t epoch) override;
  void note_op(int world_rank) override;

  void barrier(std::uint64_t comm_id, const std::vector<int>& group, int self,
               std::uint64_t epoch) override;
  std::vector<std::int64_t> board_exchange(std::uint64_t comm_id,
                                           std::uint64_t split_seq,
                                           const std::vector<int>& group,
                                           int self, std::int64_t value,
                                           std::uint64_t epoch) override;

  void poison(int world_rank, const std::string& what) override;
  void throw_if_poisoned() const override;
  [[nodiscard]] int first_failed_rank() const override;

  /// Tier 3 is inproc-only: the socket world has one fixed epoch.
  [[nodiscard]] std::uint64_t epoch() const override { return 0; }
  void throw_if_interrupted(std::uint64_t /*epoch*/) const override {}
  void mark_failed(int world_rank) override;
  std::pair<std::uint64_t, std::vector<int>> rebuild(int me) override;

 private:
  /// One direction-owning end of a loopback connection: frames emitted by
  /// hosted rank `owner` to `peer` are written here, and frames addressed
  /// to `owner` arrive here. Outbound is a deque of fully framed buffers,
  /// drained by the pump thread (rank threads never block on a socket).
  struct Conn {
    int fd = -1;
    int owner = -1;
    int peer = -1;
    std::mutex out_mutex;
    std::deque<std::vector<std::byte>> outbound;
    std::size_t out_offset = 0;  // bytes of outbound.front() already written
    std::vector<std::byte> inbuf;
    std::size_t in_offset = 0;  // parsed bytes at the front of inbuf
    bool closed = false;
  };

  /// Per hosted rank: its mailbox and its send-side replay state.
  struct Shard {
    Mailbox box;
    SenderState sender;
  };

  void start_pump();
  void pump_main();
  void wake_pump();
  [[nodiscard]] int hosted_index(int world_rank) const;
  [[nodiscard]] bool hosts(int world_rank) const;
  Conn* link(int owner, int peer);

  /// Builds a framed buffer (header + payload).
  static std::vector<std::byte> make_frame(FrameType type,
                                           const FrameHeader& proto,
                                           std::span<const std::byte> payload);
  void enqueue(Conn* conn, std::vector<std::byte> frame);
  /// Routes one built frame from hosted rank src: self-traffic dispatches
  /// locally, everything else goes out on the (src, dst) link.
  void route(int src, int dst, std::vector<std::byte> frame);

  /// First-delivery / retransmit emission: faces the fault injector (unless
  /// internal), publishing drops as tombstones on the reliable path.
  void emit(std::uint64_t comm_id, int src, int dst, int tag,
            std::uint64_t seq, std::span<const std::byte> payload,
            std::uint32_t crc, bool checksummed, bool face_injector);

  /// Transport-internal reliable post (barrier tokens, board values):
  /// bypasses the injector but uses the same sequencing so the receive path
  /// is uniform.
  void post_internal(std::uint64_t comm_id, int src, int dst, int tag,
                     std::span<const std::byte> payload);

  void send_ack(std::uint64_t comm_id, int src, int self, int tag,
                std::uint64_t seq);
  void maybe_ack(std::uint64_t comm_id, int src, int self, int tag,
                 std::uint64_t seq);
  void send_rtx_request(std::uint64_t comm_id, int src, int self, int tag,
                        std::uint64_t want);

  /// Pump-side frame ingestion.
  void read_available(Conn* conn);
  void flush_outbound(Conn* conn);
  void dispatch(const FrameHeader& h, std::vector<std::byte> payload);
  void dispatch_data(const FrameHeader& h, std::vector<std::byte> payload);
  void handle_rtx_request(const FrameHeader& h);
  void handle_ack(const FrameHeader& h);

  /// Receive-path recovery (mirrors the inproc fabric, with control frames
  /// in place of direct calls).
  bool probe_locked(std::unique_lock<std::mutex>& lock, Mailbox& box,
                    const Key& key, std::uint64_t comm_id, int src, int dst,
                    int tag);
  void on_crc_retry(Mailbox& box, const Key& key, const Message& msg,
                    std::uint64_t comm_id, int src, int dst, int tag);
  void append_retry_context(std::ostringstream& os, int attempts,
                            Clock::time_point start) const;
  [[nodiscard]] Clock::duration timeout_duration() const;

  /// Connection setup.
  void build_thread_mode_mesh();
  void build_spmd_mesh();
  static void set_sockopts(int fd);
  static void set_nonblocking(int fd);

  int size_;
  WorldOptions options_;
  bool spmd_ = false;
  SpmdConfig cfg_;
  std::vector<int> hosted_;  // world ranks hosted by this process
  std::vector<std::unique_ptr<Shard>> shards_;  // parallel to hosted_
  std::vector<std::unique_ptr<Conn>> conns_;
  std::map<std::pair<int, int>, Conn*> links_;  // (owner, peer) -> conn
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: rank threads kick the pump
  std::thread pump_;
  std::atomic<bool> stopping_{false};

  std::atomic<bool> poisoned_{false};
  mutable std::mutex poison_mutex_;
  int first_failed_rank_ = -1;
  std::string poison_what_;
};

}  // namespace bgl::rt::detail
