// Transport abstraction for the message-passing runtime (DESIGN.md §12).
//
// rt::Communicator, PendingOp, and the recovery ladder are written against
// this interface, not against a concrete fabric. Two backends ship today,
// selected by WorldOptions.transport or the BGL_TRANSPORT environment
// variable:
//
//   * "inproc" (default) — detail::Fabric in comm.cpp: ranks are threads of
//     one process, messages are byte vectors moved through shared mailboxes.
//     Bitwise-identical to the pre-interface runtime.
//   * "tcp" — SocketTransport in transport_socket.cpp: messages cross real
//     loopback TCP sockets. In thread mode the ranks are still threads (so
//     the whole test suite can run against real wires); under the SPMD
//     launcher (BGL_RANK/BGL_WORLD_SIZE, scripts/bgl_launch.sh) each rank is
//     its own OS process.
//
// The interface is deliberately the *fabric* contract, not the Communicator
// API: world-rank addressed p2p with (comm, src, tag) matching, a subset
// barrier, the split rendezvous, poison propagation, and the tier-3 epoch
// fence. Everything above (metrics, typed recv, collectives) layers on
// unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace bgl::rt {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Number of world ranks.
  [[nodiscard]] virtual int size() const = 0;

  /// --- point to point ------------------------------------------------------

  /// Buffered, never-blocking send of `data` from world rank `src` to world
  /// rank `dst`, matched at the receiver by (comm_id, src, tag).
  virtual void send(std::uint64_t comm_id, int src, int dst, int tag,
                    std::span<const std::byte> data, std::uint64_t epoch) = 0;

  /// Blocking receive (counts one runtime op for the fault injector).
  virtual std::vector<std::byte> recv(std::uint64_t comm_id, int src,
                                      int self, int tag,
                                      std::uint64_t epoch) = 0;

  /// Nonblocking matching attempt for an already-posted receive.
  virtual bool try_pop(std::uint64_t comm_id, int src, int self, int tag,
                       std::uint64_t epoch, std::vector<std::byte>& out) = 0;

  /// Blocking completion of an already-posted receive (no op accounting).
  virtual std::vector<std::byte> wait_posted(std::uint64_t comm_id, int src,
                                             int self, int tag,
                                             std::uint64_t epoch) = 0;

  /// Fault-injector op accounting for one posted op on `world_rank`.
  virtual void note_op(int world_rank) = 0;

  /// --- synchronization & rendezvous ---------------------------------------

  /// Blocks until every rank of `group` (world ranks) has entered the
  /// barrier identified by `comm_id`.
  virtual void barrier(std::uint64_t comm_id, const std::vector<int>& group,
                       int self, std::uint64_t epoch) = 0;

  /// Split rendezvous: every rank of `group` contributes `value`; returns
  /// the values of all ranks in group order. `split_seq` disambiguates
  /// consecutive exchanges on the same communicator.
  virtual std::vector<std::int64_t> board_exchange(
      std::uint64_t comm_id, std::uint64_t split_seq,
      const std::vector<int>& group, int self, std::int64_t value,
      std::uint64_t epoch) = 0;

  /// --- error propagation ---------------------------------------------------

  /// Poisons the world on behalf of `world_rank` (first caller wins).
  virtual void poison(int world_rank, const std::string& what) = 0;
  virtual void throw_if_poisoned() const = 0;
  /// Rank whose error poisoned the world, or -1.
  [[nodiscard]] virtual int first_failed_rank() const = 0;

  /// --- tier 3: epoch fencing and in-place shrink ---------------------------

  [[nodiscard]] virtual std::uint64_t epoch() const = 0;
  virtual void throw_if_interrupted(std::uint64_t epoch) const = 0;
  /// Records `world_rank` as dead (resignation or injector kill).
  virtual void mark_failed(int world_rank) = 0;
  /// Collective drain-and-rebuild among survivors; returns the new epoch
  /// and the survivor list. Throws on transports without shrink support.
  virtual std::pair<std::uint64_t, std::vector<int>> rebuild(int me) = 0;

  /// --- lifecycle hooks (driven by World::run around each rank fn) ---------

  virtual void hb_start(int /*world_rank*/) {}
  virtual void hb_stop(int /*world_rank*/, bool /*completed*/) {}

  /// --- shared per-communicator state ---------------------------------------

  /// Number of split() calls issued so far on (comm_id, world_rank),
  /// starting at 1. Lives transport-side so every Communicator handle of
  /// the same communicator — including copies — shares one counter: split
  /// is collective, so all ranks observe the same sequence and derive the
  /// same child comm id, and a copy can never fork a colliding sequence.
  [[nodiscard]] std::uint64_t next_split_seq(std::uint64_t comm_id,
                                             int world_rank);

 private:
  std::mutex split_mutex_;
  std::map<std::pair<std::uint64_t, int>, std::uint64_t> split_seqs_;
};

namespace detail {

/// SplitMix-style id combiner; deterministic across ranks. Used to derive
/// child communicator ids and the internal barrier ids of split().
[[nodiscard]] std::uint64_t mix_id(std::uint64_t a, std::uint64_t b);

}  // namespace detail

/// Resolves a transport name: `requested` if non-empty, else $BGL_TRANSPORT,
/// else "inproc". Throws bgl::Error on an unknown name.
[[nodiscard]] std::string resolve_transport_name(const std::string& requested);

/// True when the SPMD launcher environment (BGL_RANK and BGL_WORLD_SIZE) is
/// present: this process hosts exactly one rank of a multi-process world.
[[nodiscard]] bool spmd_env_configured();

/// SPMD process identity, parsed (and validated) from the environment.
struct SpmdConfig {
  int rank = 0;
  int world_size = 1;
  /// Directory for the port-file rendezvous (BGL_TCP_DIR).
  std::string rendezvous_dir;
};

[[nodiscard]] SpmdConfig spmd_config_from_env();

}  // namespace bgl::rt
