#include "runtime/recovery.hpp"

#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"
#include "runtime/fault.hpp"

namespace bgl::rt {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

}  // namespace

RetryOptions retry_options_from_env() {
  static const RetryOptions opts = [] {
    RetryOptions o;
    const char* max = std::getenv("BGL_RETRY_MAX");
    const char* backoff = std::getenv("BGL_RETRY_BACKOFF_MS");
    o.enabled = (max != nullptr && *max != '\0') ||
                (backoff != nullptr && *backoff != '\0');
    if (max != nullptr && *max != '\0')
      o.max_retries = static_cast<int>(std::strtol(max, nullptr, 10));
    if (backoff != nullptr && *backoff != '\0')
      o.backoff_ms = std::strtod(backoff, nullptr);
    return o;
  }();
  return opts;
}

HeartbeatOptions heartbeat_options_from_env() {
  static const HeartbeatOptions opts = [] {
    HeartbeatOptions o;
    o.interval_ms = env_double("BGL_HEARTBEAT_MS", 0.0);
    return o;
  }();
  return opts;
}

HeartbeatMonitor::HeartbeatMonitor(int size, HeartbeatOptions options,
                                   FaultInjector* injector)
    : options_(options), injector_(injector) {
  ranks_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    ranks_.push_back(std::make_unique<PerRank>());
}

HeartbeatMonitor::~HeartbeatMonitor() {
  for (auto& pr : ranks_) {
    pr->running.store(false);
    if (pr->beater.joinable()) pr->beater.join();
  }
}

void HeartbeatMonitor::start(int rank) {
  if (!enabled()) return;
  PerRank& pr = *ranks_.at(static_cast<std::size_t>(rank));
  const auto now = Clock::now();
  pr.started = now;
  pr.last_beat.store(now.time_since_epoch().count(),
                     std::memory_order_relaxed);
  pr.running.store(true);
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.interval_ms));
  pr.beater = std::thread([this, rank, interval, &pr] {
    while (pr.running.load(std::memory_order_relaxed)) {
      const auto now = Clock::now();
      const double alive_s =
          std::chrono::duration<double>(now - pr.started).count();
      // A partitioned node keeps computing but its beats stop arriving.
      const bool muted =
          injector_ != nullptr && injector_->heartbeat_muted(rank, alive_s);
      if (!muted)
        pr.last_beat.store(now.time_since_epoch().count(),
                           std::memory_order_relaxed);
      std::this_thread::sleep_for(interval);
    }
  });
}

void HeartbeatMonitor::stop(int rank, bool completed) {
  if (!enabled()) return;
  PerRank& pr = *ranks_.at(static_cast<std::size_t>(rank));
  if (completed) pr.completed.store(true, std::memory_order_relaxed);
  pr.running.store(false);
  if (pr.beater.joinable()) pr.beater.join();
}

double HeartbeatMonitor::suspicion(int rank) const {
  if (!enabled()) return 0.0;
  const PerRank& pr = *ranks_.at(static_cast<std::size_t>(rank));
  if (pr.completed.load(std::memory_order_relaxed)) return 0.0;
  const auto last = Clock::time_point(
      Clock::duration(pr.last_beat.load(std::memory_order_relaxed)));
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - last).count();
  const double phi = elapsed_s / (options_.interval_ms * 1e-3);
  return phi > 0.0 ? phi : 0.0;
}

bool HeartbeatMonitor::confirmed_dead(int rank) const {
  const PerRank& pr = *ranks_.at(static_cast<std::size_t>(rank));
  if (pr.dead.load(std::memory_order_relaxed)) return true;
  if (!enabled()) return false;
  if (pr.completed.load(std::memory_order_relaxed)) return false;
  const double phi = suspicion(rank);
  if (phi < options_.phi_threshold) return false;
  if (obs::metrics_enabled()) obs::observe("hb.suspicion", phi);
  return true;
}

bool HeartbeatMonitor::completed(int rank) const {
  return ranks_.at(static_cast<std::size_t>(rank))
      ->completed.load(std::memory_order_relaxed);
}

void HeartbeatMonitor::mark_dead(int rank) {
  ranks_.at(static_cast<std::size_t>(rank))
      ->dead.store(true, std::memory_order_relaxed);
}

}  // namespace bgl::rt
