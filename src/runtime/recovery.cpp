#include "runtime/recovery.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "core/error.hpp"
#include "obs/blackbox.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"

namespace bgl::rt {

namespace {

[[nodiscard]] bool is_set(const char* text) {
  return text != nullptr && *text != '\0';
}

/// Strict integer knob: the whole string must parse (trailing junk beyond
/// whitespace rejected) and land inside [lo, hi]. Overflow is caught via
/// errno == ERANGE.
long parse_long_knob(const char* name, const char* text, long lo, long hi) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  BGL_ENSURE(end != text, name << "=\"" << text << "\" is not a number");
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) ++end;
  BGL_ENSURE(*end == '\0',
             name << "=\"" << text << "\" has trailing garbage at \"" << end
                  << "\"");
  BGL_ENSURE(errno != ERANGE, name << "=\"" << text << "\" overflows");
  BGL_ENSURE(value >= lo && value <= hi,
             name << "=" << value << " is out of range [" << lo << ", " << hi
                  << "]");
  return value;
}

/// Strict floating-point knob: full-string parse, finite, inside the range
/// (lower bound exclusive when lo_exclusive — a 0 ms backoff would spin).
double parse_double_knob(const char* name, const char* text, double lo,
                         double hi, bool lo_exclusive) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  BGL_ENSURE(end != text, name << "=\"" << text << "\" is not a number");
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) ++end;
  BGL_ENSURE(*end == '\0',
             name << "=\"" << text << "\" has trailing garbage at \"" << end
                  << "\"");
  BGL_ENSURE(errno != ERANGE && std::isfinite(value),
             name << "=\"" << text << "\" is not a finite number");
  const bool above_lo = lo_exclusive ? value > lo : value >= lo;
  BGL_ENSURE(above_lo && value <= hi,
             name << "=" << value << " is out of range "
                  << (lo_exclusive ? "(" : "[") << lo << ", " << hi << "]");
  return value;
}

}  // namespace

RetryOptions parse_retry_options(const char* max_text,
                                 const char* backoff_text) {
  RetryOptions o;
  o.enabled = is_set(max_text) || is_set(backoff_text);
  if (is_set(max_text)) {
    o.max_retries = static_cast<int>(
        parse_long_knob("BGL_RETRY_MAX", max_text, 0, 1000000));
  }
  if (is_set(backoff_text)) {
    o.backoff_ms = parse_double_knob("BGL_RETRY_BACKOFF_MS", backoff_text, 0.0,
                                     60000.0, /*lo_exclusive=*/true);
    // Keep the schedule monotone if the floor is raised past the cap.
    if (o.backoff_ms > o.backoff_max_ms) o.backoff_max_ms = o.backoff_ms;
  }
  return o;
}

HeartbeatOptions parse_heartbeat_options(const char* interval_text) {
  HeartbeatOptions o;
  if (is_set(interval_text)) {
    o.interval_ms = parse_double_knob("BGL_HEARTBEAT_MS", interval_text, 0.0,
                                      600000.0, /*lo_exclusive=*/false);
  }
  return o;
}

RetryOptions retry_options_from_env() {
  static const RetryOptions opts = parse_retry_options(
      std::getenv("BGL_RETRY_MAX"), std::getenv("BGL_RETRY_BACKOFF_MS"));
  return opts;
}

HeartbeatOptions heartbeat_options_from_env() {
  static const HeartbeatOptions opts =
      parse_heartbeat_options(std::getenv("BGL_HEARTBEAT_MS"));
  return opts;
}

HeartbeatMonitor::HeartbeatMonitor(int size, HeartbeatOptions options,
                                   FaultInjector* injector)
    : options_(options), injector_(injector) {
  ranks_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    ranks_.push_back(std::make_unique<PerRank>());
}

HeartbeatMonitor::~HeartbeatMonitor() {
  for (auto& pr : ranks_) {
    pr->running.store(false);
    if (pr->beater.joinable()) pr->beater.join();
  }
}

void HeartbeatMonitor::start(int rank) {
  if (!enabled()) return;
  PerRank& pr = *ranks_.at(static_cast<std::size_t>(rank));
  const auto now = Clock::now();
  pr.started = now;
  pr.last_beat.store(now.time_since_epoch().count(),
                     std::memory_order_relaxed);
  pr.running.store(true);
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.interval_ms));
  pr.beater = std::thread([this, rank, interval, &pr] {
    while (pr.running.load(std::memory_order_relaxed)) {
      const auto now = Clock::now();
      const double alive_s =
          std::chrono::duration<double>(now - pr.started).count();
      // A partitioned node keeps computing but its beats stop arriving.
      const bool muted =
          injector_ != nullptr && injector_->heartbeat_muted(rank, alive_s);
      if (!muted)
        pr.last_beat.store(now.time_since_epoch().count(),
                           std::memory_order_relaxed);
      std::this_thread::sleep_for(interval);
    }
  });
}

void HeartbeatMonitor::stop(int rank, bool completed) {
  if (!enabled()) return;
  PerRank& pr = *ranks_.at(static_cast<std::size_t>(rank));
  if (completed) pr.completed.store(true, std::memory_order_relaxed);
  pr.running.store(false);
  if (pr.beater.joinable()) pr.beater.join();
}

double HeartbeatMonitor::suspicion(int rank) const {
  if (!enabled()) return 0.0;
  const PerRank& pr = *ranks_.at(static_cast<std::size_t>(rank));
  if (pr.completed.load(std::memory_order_relaxed)) return 0.0;
  const auto last = Clock::time_point(
      Clock::duration(pr.last_beat.load(std::memory_order_relaxed)));
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - last).count();
  const double phi = elapsed_s / (options_.interval_ms * 1e-3);
  return phi > 0.0 ? phi : 0.0;
}

bool HeartbeatMonitor::confirmed_dead(int rank) const {
  const PerRank& pr = *ranks_.at(static_cast<std::size_t>(rank));
  if (pr.dead.load(std::memory_order_relaxed)) return true;
  if (!enabled()) return false;
  if (pr.completed.load(std::memory_order_relaxed)) return false;
  const double phi = suspicion(rank);
  if (phi < options_.phi_threshold) return false;
  if (obs::metrics_enabled()) obs::observe("hb.suspicion", phi);
  // The observer's flight recorder keeps the suspicion transition: which
  // peer crossed phi, and how far past the threshold it was.
  obs::blackbox_record(obs::current_rank(), obs::BlackboxKind::kSuspicion,
                       rank, /*tag=*/0, /*comm=*/0, /*seq=*/0, phi);
  return true;
}

bool HeartbeatMonitor::completed(int rank) const {
  return ranks_.at(static_cast<std::size_t>(rank))
      ->completed.load(std::memory_order_relaxed);
}

void HeartbeatMonitor::mark_dead(int rank) {
  ranks_.at(static_cast<std::size_t>(rank))
      ->dead.store(true, std::memory_order_relaxed);
  // Recorded on the dead rank's own ring so its post-mortem dump carries
  // the moment the cluster gave up on it.
  obs::blackbox_record(rank, obs::BlackboxKind::kRankDead);
}

}  // namespace bgl::rt
